#include "src/exos/fs.h"

#include <algorithm>
#include <cstring>

namespace xok::exos {

using hw::Instr;

namespace {

uint32_t ReadLe32(std::span<const uint8_t> bytes, size_t off) {
  uint32_t value = 0;
  std::memcpy(&value, &bytes[off], 4);
  return value;
}

void WriteLe32(std::span<uint8_t> bytes, size_t off, uint32_t value) {
  std::memcpy(&bytes[off], &value, 4);
}

constexpr size_t kDirEntryBytes = 32;  // 28-byte name + 4-byte inode.
constexpr size_t kDirEntries = hw::kPageBytes / kDirEntryBytes;
constexpr size_t kInodeBytes = 64;

// Superblock field offsets.
constexpr size_t kSuperMagicOff = 0;
constexpr size_t kSuperNextFreeOff = 4;
constexpr size_t kSuperJournalStartOff = 8;
constexpr size_t kSuperJournalBlocksOff = 12;

// Journal record block layouts. Checksums sit in the last word of the
// block so a torn write (which durably lands a *prefix* of the new words)
// can never produce a block that checksums as complete.
constexpr uint32_t kDescMagic = 0xd5c0de01;
constexpr uint32_t kCommitMagic = 0xd5c0de02;
constexpr size_t kChecksumOff = hw::kPageBytes - 4;

uint32_t Fnv1a(std::span<const uint8_t> bytes, uint32_t hash = 2166136261u) {
  for (uint8_t b : bytes) {
    hash ^= b;
    hash *= 16777619u;
  }
  return hash;
}

// Header checksum of a descriptor/commit block: everything before the
// checksum word.
uint32_t HeaderChecksum(std::span<const uint8_t> block) {
  return Fnv1a(block.first(kChecksumOff));
}

}  // namespace

// --- BlockCache ---

Result<std::unique_ptr<BlockCache>> BlockCache::Create(
    Process& proc, const aegis::Aegis::DiskExtentGrant& extent, size_t slots) {
  if (slots == 0) {
    return Status::kErrInvalidArgs;
  }
  auto cache = std::unique_ptr<BlockCache>(new BlockCache(proc, extent));
  for (size_t i = 0; i < slots; ++i) {
    Result<aegis::PageGrant> frame = proc.kernel().SysAllocPage();
    if (!frame.ok()) {
      return frame.status();
    }
    cache->frames_.push_back(frame->page);
    cache->frame_caps_.push_back(frame->cap);
    cache->slots_.push_back(Slot{});
  }
  return cache;
}

size_t BlockCache::PickVictim() const {
  // Prefer an invalid slot.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].valid) {
      return i;
    }
  }
  if (policy_ == Policy::kCustom && picker_) {
    const size_t choice = picker_(slots_);
    return choice < slots_.size() ? choice : 0;
  }
  size_t best = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    const bool better = policy_ == Policy::kMru ? slots_[i].last_use > slots_[best].last_use
                                                : slots_[i].last_use < slots_[best].last_use;
    if (better) {
      best = i;
    }
  }
  return best;
}

Status BlockCache::Transfer(uint32_t block, size_t slot, bool write) {
  uint64_t backoff = hw::kClockHz / 10000;  // 0.1 ms before the first retry.
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    const Status status =
        write ? proc_.kernel().SysDiskWrite(extent_.extent, extent_.cap, block, frames_[slot])
              : proc_.kernel().SysDiskRead(extent_.extent, extent_.cap, block, frames_[slot]);
    if (status != Status::kErrIo) {
      return status;
    }
    // Media error: back off and retry. Storage robustness is library
    // policy here — a different libFS could fail fast or remap instead.
    ++io_retries_;
    proc_.kernel().SysSleep(backoff);
    backoff *= 2;
  }
  return Status::kErrIo;
}

Status BlockCache::WriteBack(size_t slot) {
  if (!slots_[slot].valid || !slots_[slot].dirty) {
    return Status::kOk;
  }
  const Status status = Transfer(slots_[slot].block, slot, /*write=*/true);
  if (status == Status::kOk) {
    slots_[slot].dirty = false;
  }
  return status;
}

Result<std::span<uint8_t>> BlockCache::GetBlock(uint32_t block, bool for_write) {
  if (block >= extent_.blocks) {
    return Status::kErrOutOfRange;
  }
  proc_.machine().Charge(Instr(10));  // Cache lookup.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].valid && slots_[i].block == block) {
      ++hits_;
      slots_[i].last_use = ++tick_;
      slots_[i].dirty = slots_[i].dirty || for_write;
      return proc_.machine().mem().PageSpan(frames_[i]);
    }
  }
  ++misses_;
  const size_t victim = PickVictim();
  proc_.machine().Charge(Instr(20));  // Policy + bookkeeping.
  const Status flush = WriteBack(victim);
  if (flush != Status::kOk) {
    return flush;
  }
  const Status read = Transfer(block, victim, /*write=*/false);
  if (read != Status::kOk) {
    return read;
  }
  slots_[victim] = Slot{block, true, for_write, ++tick_};
  return proc_.machine().mem().PageSpan(frames_[victim]);
}

Status BlockCache::Flush() {
  // Attempt every slot even after a failure: one bad block must not leave
  // the rest of the dirty set stranded in volatile memory. The first error
  // is reported; dirty_remaining() tells the caller what is still at risk.
  Status first_error = Status::kOk;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Status status = WriteBack(i);
    if (status != Status::kOk && first_error == Status::kOk) {
      first_error = status;
    }
  }
  return first_error;
}

size_t BlockCache::dirty_remaining() const {
  size_t dirty = 0;
  for (const Slot& slot : slots_) {
    if (slot.valid && slot.dirty) {
      ++dirty;
    }
  }
  return dirty;
}

uint32_t BlockCache::ReleaseCleanFrames(uint32_t n) {
  uint32_t released = 0;
  // Walk backwards so erasing does not shift unvisited slots. Only invalid
  // or clean slots go — a dirty frame holds the sole copy of its block, and
  // this path must not block on a write-back.
  for (size_t i = slots_.size(); i-- > 0 && released < n;) {
    if (slots_.size() <= 1) {
      break;
    }
    if (slots_[i].valid && slots_[i].dirty) {
      continue;
    }
    (void)proc_.kernel().SysDeallocPage(frames_[i], frame_caps_[i]);
    slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(i));
    frames_.erase(frames_.begin() + static_cast<ptrdiff_t>(i));
    frame_caps_.erase(frame_caps_.begin() + static_cast<ptrdiff_t>(i));
    ++released;
  }
  return released;
}

uint32_t BlockCache::RepairAfterRepossession(std::span<const hw::PageId> taken) {
  uint32_t repaired = 0;
  for (size_t i = slots_.size(); i-- > 0;) {
    if (std::find(taken.begin(), taken.end(), frames_[i]) == taken.end()) {
      continue;
    }
    ++repaired;
    Result<aegis::PageGrant> fresh = proc_.kernel().SysAllocPage();
    if (fresh.ok()) {
      frames_[i] = fresh->page;
      frame_caps_[i] = fresh->cap;
      slots_[i] = Slot{};  // Contents went with the old frame; re-read on use.
    } else if (slots_.size() > 1) {
      slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(i));
      frames_.erase(frames_.begin() + static_cast<ptrdiff_t>(i));
      frame_caps_.erase(frame_caps_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      slots_[i] = Slot{};  // Last slot, no frame to be had: stays degraded.
    }
  }
  return repaired;
}

BlockCache::VictimPicker MakeScanAwarePicker(uint32_t metadata_blocks) {
  return [metadata_blocks](std::span<const BlockCache::Slot> slots) -> size_t {
    // MRU among data blocks; metadata stays resident.
    size_t best = SIZE_MAX;
    uint64_t best_use = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].valid || slots[i].block < metadata_blocks) {
        continue;
      }
      if (best == SIZE_MAX || slots[i].last_use > best_use) {
        best = i;
        best_use = slots[i].last_use;
      }
    }
    if (best != SIZE_MAX) {
      return best;
    }
    // Only metadata resident: fall back to plain LRU.
    size_t lru = 0;
    for (size_t i = 1; i < slots.size(); ++i) {
      if (slots[i].last_use < slots[lru].last_use) {
        lru = i;
      }
    }
    return lru;
  };
}

// --- LibFs ---

Result<std::unique_ptr<LibFs>> LibFs::Format(Process& proc,
                                             const aegis::Aegis::DiskExtentGrant& extent,
                                             size_t cache_slots) {
  Options options;
  options.cache_slots = cache_slots;
  return Format(proc, extent, options);
}

Result<std::unique_ptr<LibFs>> LibFs::Format(Process& proc,
                                             const aegis::Aegis::DiskExtentGrant& extent,
                                             const Options& options) {
  if (options.journal_blocks > 0 && options.journal_blocks < kMaxTxnBlocks + 2) {
    return Status::kErrInvalidArgs;  // Not even one transaction fits.
  }
  const uint32_t data_start = kJournalStart + options.journal_blocks;
  if (extent.blocks < data_start + 1) {
    return Status::kErrInvalidArgs;
  }
  Result<std::unique_ptr<BlockCache>> cache =
      BlockCache::Create(proc, extent, options.cache_slots);
  if (!cache.ok()) {
    return cache.status();
  }
  auto fs = std::unique_ptr<LibFs>(new LibFs(proc, extent, std::move(*cache)));
  fs->journal_blocks_ = options.journal_blocks;
  fs->data_start_ = data_start;
  if (fs->journaled()) {
    // A stale journal from a previous tenant of this extent must not replay
    // over the fresh file system.
    const Status frame = fs->AllocRawFrame();
    if (frame != Status::kOk) {
      return frame;
    }
    std::vector<uint8_t> zero(hw::kPageBytes, 0);
    for (uint32_t j = 0; j < fs->journal_blocks_; ++j) {
      const Status wiped = fs->RawWrite(kJournalStart + j, zero);
      if (wiped != Status::kOk) {
        return wiped;
      }
    }
  }
  // Superblock.
  Result<std::span<uint8_t>> super = fs->cache_->GetBlock(kSuperBlock, /*for_write=*/true);
  if (!super.ok()) {
    return super.status();
  }
  std::fill(super->begin(), super->end(), uint8_t{0});
  WriteLe32(*super, kSuperMagicOff, kMagic);
  WriteLe32(*super, kSuperNextFreeOff, data_start);  // Next free data block.
  WriteLe32(*super, kSuperJournalStartOff, kJournalStart);
  WriteLe32(*super, kSuperJournalBlocksOff, fs->journal_blocks_);
  // Empty directory and inode table.
  for (uint32_t block : {kDirBlock, kInodeBlock}) {
    Result<std::span<uint8_t>> bytes = fs->cache_->GetBlock(block, /*for_write=*/true);
    if (!bytes.ok()) {
      return bytes.status();
    }
    std::fill(bytes->begin(), bytes->end(), uint8_t{0});
  }
  const Status sync = fs->Sync();
  if (sync != Status::kOk) {
    return sync;
  }
  return fs;
}

Result<std::unique_ptr<LibFs>> LibFs::Mount(Process& proc,
                                            const aegis::Aegis::DiskExtentGrant& extent,
                                            size_t cache_slots) {
  Result<std::unique_ptr<BlockCache>> cache = BlockCache::Create(proc, extent, cache_slots);
  if (!cache.ok()) {
    return cache.status();
  }
  auto fs = std::unique_ptr<LibFs>(new LibFs(proc, extent, std::move(*cache)));
  // The superblock is read raw, not through the cache: journal replay may
  // rewrite it, and a pre-replay copy must never linger in a cache slot.
  const Status frame = fs->AllocRawFrame();
  if (frame != Status::kOk) {
    return frame;
  }
  std::vector<uint8_t> super(hw::kPageBytes);
  const Status read = fs->RawRead(kSuperBlock, super);
  if (read != Status::kOk) {
    return read;
  }
  if (ReadLe32(super, kSuperMagicOff) != kMagic) {
    return Status::kErrBadState;
  }
  const uint32_t journal_start = ReadLe32(super, kSuperJournalStartOff);
  const uint32_t journal_blocks = ReadLe32(super, kSuperJournalBlocksOff);
  if (journal_blocks > 0 &&
      (journal_start != kJournalStart || journal_blocks < kMaxTxnBlocks + 2 ||
       kJournalStart + journal_blocks >= extent.blocks)) {
    return Status::kErrBadState;
  }
  fs->journal_blocks_ = journal_blocks;
  fs->data_start_ = kJournalStart + journal_blocks;
  if (fs->journaled()) {
    const Status replayed = fs->ReplayJournal();
    if (replayed != Status::kOk) {
      return replayed;
    }
  }
  return fs;
}

// --- Raw (cache-bypassing) journal I/O ---

Status LibFs::AllocRawFrame() {
  if (raw_frame_ok_) {
    return Status::kOk;
  }
  Result<aegis::PageGrant> frame = proc_.kernel().SysAllocPage();
  if (!frame.ok()) {
    return frame.status();
  }
  raw_frame_ = frame->page;
  raw_frame_ok_ = true;
  return Status::kOk;
}

uint32_t LibFs::RepairAfterRepossession(std::span<const hw::PageId> taken) {
  uint32_t repaired = 0;
  if (raw_frame_ok_ &&
      std::find(taken.begin(), taken.end(), raw_frame_) != taken.end()) {
    // The journal's DMA frame went to the abort protocol; the next raw
    // transfer re-allocates one (the frame carries no durable state).
    raw_frame_ok_ = false;
    ++repaired;
  }
  return repaired + cache_->RepairAfterRepossession(taken);
}

Status LibFs::RawWrite(uint32_t block, std::span<const uint8_t> bytes) {
  const Status frame = AllocRawFrame();  // Lazy re-allocation after repossession.
  if (frame != Status::kOk) {
    return frame;
  }
  auto frame_span = proc_.machine().mem().PageSpan(raw_frame_);
  proc_.machine().Charge(hw::kMemWordCopy * (hw::kPageBytes / 4));
  std::copy(bytes.begin(), bytes.end(), frame_span.begin());
  uint64_t backoff = hw::kClockHz / 10000;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const Status status =
        proc_.kernel().SysDiskWrite(extent_.extent, extent_.cap, block, raw_frame_);
    if (status != Status::kErrIo) {
      if (status == Status::kOk) {
        ++journal_block_writes_;
      }
      return status;
    }
    proc_.kernel().SysSleep(backoff);
    backoff *= 2;
  }
  return Status::kErrIo;
}

Status LibFs::RawRead(uint32_t block, std::span<uint8_t> out) {
  const Status frame = AllocRawFrame();  // Lazy re-allocation after repossession.
  if (frame != Status::kOk) {
    return frame;
  }
  uint64_t backoff = hw::kClockHz / 10000;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const Status status =
        proc_.kernel().SysDiskRead(extent_.extent, extent_.cap, block, raw_frame_);
    if (status == Status::kOk) {
      auto frame_span = proc_.machine().mem().PageSpan(raw_frame_);
      proc_.machine().Charge(hw::kMemWordCopy * (hw::kPageBytes / 4));
      std::copy(frame_span.begin(), frame_span.end(), out.begin());
      return Status::kOk;
    }
    if (status != Status::kErrIo) {
      return status;
    }
    proc_.kernel().SysSleep(backoff);
    backoff *= 2;
  }
  return Status::kErrIo;
}

Status LibFs::Barrier() {
  const Status status = proc_.kernel().SysDiskBarrier(extent_.extent, extent_.cap);
  if (status == Status::kOk) {
    ++barriers_issued_;
  }
  return status;
}

// --- Transactions ---

Result<std::span<uint8_t>> LibFs::TxnStage(uint32_t block) {
  for (TxnBlock& staged : txn_) {
    if (staged.block == block) {
      return std::span<uint8_t>(staged.bytes);
    }
  }
  if (txn_.size() >= kMaxTxnBlocks) {
    return Status::kErrNoResources;
  }
  Result<std::span<uint8_t>> current = cache_->GetBlock(block, /*for_write=*/false);
  if (!current.ok()) {
    return current.status();
  }
  txn_.reserve(kMaxTxnBlocks);
  txn_.push_back(TxnBlock{block, std::vector<uint8_t>(current->begin(), current->end())});
  return std::span<uint8_t>(txn_.back().bytes);
}

Status LibFs::CommitTxn() {
  if (txn_.empty()) {
    return Status::kOk;
  }
  if (journaled()) {
    const uint32_t record_blocks = 2 + static_cast<uint32_t>(txn_.size());
    if (journal_head_ + record_blocks > journal_blocks_) {
      // Journal full: checkpoint (home locations catch up, head rewinds).
      const Status checkpointed = Checkpoint();
      if (checkpointed != Status::kOk) {
        AbortTxn();
        return checkpointed;
      }
    }
    const uint32_t txn_id = next_txn_id_;
    // Descriptor: magic, id, count, target block list, tail checksum.
    scratch_.assign(hw::kPageBytes, 0);
    std::span<uint8_t> desc(scratch_);
    WriteLe32(desc, 0, kDescMagic);
    WriteLe32(desc, 4, txn_id);
    WriteLe32(desc, 8, static_cast<uint32_t>(txn_.size()));
    for (size_t i = 0; i < txn_.size(); ++i) {
      WriteLe32(desc, 12 + 4 * i, txn_[i].block);
    }
    proc_.machine().Charge(Instr(hw::kPageBytes / 4));  // Checksum pass.
    WriteLe32(desc, kChecksumOff, HeaderChecksum(desc));
    Status written = RawWrite(kJournalStart + journal_head_, desc);
    if (written != Status::kOk) {
      AbortTxn();
      return written;
    }
    // Payload blocks: the new images, verbatim.
    uint32_t payload_checksum = 2166136261u;
    for (size_t i = 0; i < txn_.size(); ++i) {
      proc_.machine().Charge(Instr(hw::kPageBytes / 4));
      payload_checksum = Fnv1a(txn_[i].bytes, payload_checksum);
      written = RawWrite(kJournalStart + journal_head_ + 1 + static_cast<uint32_t>(i),
                         txn_[i].bytes);
      if (written != Status::kOk) {
        AbortTxn();
        return written;
      }
    }
    // Commit block. It can only be durable together with (or after) the
    // payloads — the barrier below is the commit point, and a power cut
    // can at worst tear it into a block that fails its own checksum.
    scratch_.assign(hw::kPageBytes, 0);
    std::span<uint8_t> commit(scratch_);
    WriteLe32(commit, 0, kCommitMagic);
    WriteLe32(commit, 4, txn_id);
    WriteLe32(commit, 8, payload_checksum);
    proc_.machine().Charge(Instr(hw::kPageBytes / 4));
    WriteLe32(commit, kChecksumOff, HeaderChecksum(commit));
    written = RawWrite(kJournalStart + journal_head_ + 1 + record_blocks - 2, commit);
    if (written != Status::kOk) {
      AbortTxn();
      return written;
    }
    const Status committed = Barrier();
    if (committed != Status::kOk) {
      AbortTxn();
      return committed;
    }
    journal_head_ += record_blocks;
    ++next_txn_id_;
    ++txns_committed_;
  }
  // Only now may the new images enter the write-back cache: any eviction
  // that carries them toward their home locations happens strictly after
  // the commit barrier (write-ahead rule).
  for (const TxnBlock& staged : txn_) {
    Result<std::span<uint8_t>> home = cache_->GetBlock(staged.block, /*for_write=*/true);
    if (!home.ok()) {
      return home.status();
    }
    proc_.machine().Charge(hw::kMemWordCopy * (hw::kPageBytes / 4));
    std::copy(staged.bytes.begin(), staged.bytes.end(), home->begin());
  }
  txn_.clear();
  return Status::kOk;
}

Status LibFs::Checkpoint() {
  const Status flushed = cache_->Flush();
  if (flushed != Status::kOk) {
    return flushed;
  }
  const Status durable = Barrier();
  if (durable != Status::kOk) {
    return durable;
  }
  if (journaled()) {
    // Every committed transaction is home and durable; the journal can be
    // overwritten from the start. Transaction ids keep increasing, which
    // is what lets replay tell fresh records from stale ones.
    journal_head_ = 0;
    ++checkpoints_;
  }
  return Status::kOk;
}

Status LibFs::ReplayJournal() {
  // Snapshot the whole journal region, then walk records from the start.
  std::vector<std::vector<uint8_t>> journal(journal_blocks_);
  for (uint32_t j = 0; j < journal_blocks_; ++j) {
    journal[j].resize(hw::kPageBytes);
    const Status read = RawRead(kJournalStart + j, journal[j]);
    if (read != Status::kOk) {
      return read;
    }
  }
  const auto desc_valid = [](std::span<const uint8_t> block) {
    return ReadLe32(block, 0) == kDescMagic &&
           ReadLe32(block, kChecksumOff) == HeaderChecksum(block);
  };
  uint32_t head = 0;
  uint32_t last_id = 0;
  uint64_t replayed = 0;
  while (head + 2 + 1 <= journal_blocks_) {
    const std::span<const uint8_t> desc(journal[head]);
    proc_.machine().Charge(Instr(hw::kPageBytes / 4));
    if (!desc_valid(desc)) {
      break;  // Torn, stale-garbage, or never-written: end of the log.
    }
    const uint32_t txn_id = ReadLe32(desc, 4);
    const uint32_t count = ReadLe32(desc, 8);
    if (txn_id <= last_id || count == 0 || count > kMaxTxnBlocks ||
        head + 2 + count > journal_blocks_) {
      break;  // Stale record from an earlier checkpoint window.
    }
    bool targets_ok = true;
    for (uint32_t i = 0; i < count; ++i) {
      if (ReadLe32(desc, 12 + 4 * i) >= kJournalStart) {
        targets_ok = false;  // Only metadata blocks are ever journaled.
      }
    }
    if (!targets_ok) {
      break;
    }
    const std::span<const uint8_t> commit(journal[head + 1 + count]);
    proc_.machine().Charge(Instr(hw::kPageBytes / 4));
    if (ReadLe32(commit, 0) != kCommitMagic || ReadLe32(commit, 4) != txn_id ||
        ReadLe32(commit, kChecksumOff) != HeaderChecksum(commit)) {
      break;  // Uncommitted or torn: discard this and everything after.
    }
    uint32_t payload_checksum = 2166136261u;
    for (uint32_t i = 0; i < count; ++i) {
      proc_.machine().Charge(Instr(hw::kPageBytes / 4));
      payload_checksum = Fnv1a(journal[head + 1 + i], payload_checksum);
    }
    if (payload_checksum != ReadLe32(commit, 8)) {
      break;  // A payload block was torn by the crash.
    }
    // Committed: physical redo (idempotent — replaying twice is harmless).
    for (uint32_t i = 0; i < count; ++i) {
      const Status redone = RawWrite(ReadLe32(desc, 12 + 4 * i), journal[head + 1 + i]);
      if (redone != Status::kOk) {
        return redone;
      }
    }
    last_id = txn_id;
    ++replayed;
    head += 2 + count;
  }
  // New transaction ids must exceed every id still readable in the journal,
  // including stale committed records beyond the replay point — otherwise a
  // later mount could mistake such a leftover for fresh log tail.
  uint32_t max_id = last_id;
  for (uint32_t j = 0; j < journal_blocks_; ++j) {
    if (desc_valid(journal[j])) {
      max_id = std::max(max_id, ReadLe32(journal[j], 4));
    }
  }
  if (replayed > 0) {
    const Status durable = Barrier();
    if (durable != Status::kOk) {
      return durable;
    }
  }
  txns_replayed_ = replayed;
  next_txn_id_ = max_id + 1;
  journal_head_ = 0;
  return Status::kOk;
}

// --- Files ---

Result<LibFs::Inode> LibFs::LoadInode(FileHandle file) {
  if (file >= kMaxInodes) {
    return Status::kErrOutOfRange;
  }
  Result<std::span<uint8_t>> block = cache_->GetBlock(kInodeBlock, /*for_write=*/false);
  if (!block.ok()) {
    return block.status();
  }
  Inode inode;
  const size_t base = file * kInodeBytes;
  inode.used = ReadLe32(*block, base);
  inode.size = ReadLe32(*block, base + 4);
  for (uint32_t i = 0; i < kDirectBlocks; ++i) {
    inode.direct[i] = ReadLe32(*block, base + 8 + 4 * i);
  }
  return inode;
}

Result<FileHandle> LibFs::Create(std::string_view name) {
  if (name.empty() || name.size() > kMaxNameBytes) {
    return Status::kErrInvalidArgs;
  }
  if (Open(name).ok()) {
    return Status::kErrAlreadyExists;
  }
  // Find a free inode.
  FileHandle handle = kMaxInodes;
  for (FileHandle i = 0; i < kMaxInodes; ++i) {
    Result<Inode> inode = LoadInode(i);
    if (inode.ok() && inode->used == 0) {
      handle = i;
      break;
    }
  }
  if (handle == kMaxInodes) {
    return Status::kErrNoResources;
  }
  // Find a free directory entry and build the directory + inode images as
  // one transaction: a crash either shows the file (entry and inode both
  // live) or doesn't — never a dangling entry.
  Result<std::span<uint8_t>> dir = TxnStage(kDirBlock);
  if (!dir.ok()) {
    return dir.status();
  }
  size_t entry_index = kDirEntries;
  for (size_t e = 0; e < kDirEntries; ++e) {
    if ((*dir)[e * kDirEntryBytes] == 0) {
      entry_index = e;
      break;
    }
  }
  if (entry_index == kDirEntries) {
    AbortTxn();
    return Status::kErrNoResources;
  }
  uint8_t* entry = &(*dir)[entry_index * kDirEntryBytes];
  std::memcpy(entry, name.data(), name.size());
  entry[name.size()] = 0;
  WriteLe32(*dir, entry_index * kDirEntryBytes + 28, handle);
  Result<std::span<uint8_t>> inodes = TxnStage(kInodeBlock);  // May invalidate `dir`.
  if (!inodes.ok()) {
    AbortTxn();
    return inodes.status();
  }
  const size_t base = handle * kInodeBytes;
  std::fill(inodes->begin() + base, inodes->begin() + base + kInodeBytes, uint8_t{0});
  WriteLe32(*inodes, base, 1);  // used
  const Status committed = CommitTxn();
  if (committed != Status::kOk) {
    return committed;
  }
  return handle;
}

Result<FileHandle> LibFs::Open(std::string_view name) {
  Result<std::span<uint8_t>> dir = cache_->GetBlock(kDirBlock, /*for_write=*/false);
  if (!dir.ok()) {
    return dir.status();
  }
  for (size_t e = 0; e < kDirEntries; ++e) {
    const uint8_t* entry = &(*dir)[e * kDirEntryBytes];
    if (entry[0] == 0) {
      continue;
    }
    const size_t len = strnlen(reinterpret_cast<const char*>(entry), 28);
    if (len == name.size() && std::memcmp(entry, name.data(), len) == 0) {
      return ReadLe32(*dir, e * kDirEntryBytes + 28);
    }
  }
  return Status::kErrNotFound;
}

Result<uint32_t> LibFs::FileSize(FileHandle file) {
  Result<Inode> inode = LoadInode(file);
  if (!inode.ok()) {
    return inode.status();
  }
  if (inode->used == 0) {
    return Status::kErrNotFound;
  }
  return inode->size;
}

Result<uint32_t> LibFs::Read(FileHandle file, uint32_t offset, std::span<uint8_t> out) {
  Result<Inode> inode = LoadInode(file);
  if (!inode.ok()) {
    return inode.status();
  }
  if (inode->used == 0) {
    return Status::kErrNotFound;
  }
  if (offset >= inode->size) {
    return 0u;
  }
  uint32_t todo = std::min<uint32_t>(static_cast<uint32_t>(out.size()), inode->size - offset);
  uint32_t done = 0;
  while (done < todo) {
    const uint32_t pos = offset + done;
    const uint32_t index = pos / hw::kPageBytes;
    const uint32_t in_block = pos % hw::kPageBytes;
    const uint32_t chunk = std::min(todo - done, hw::kPageBytes - in_block);
    Result<std::span<uint8_t>> block =
        cache_->GetBlock(inode->direct[index], /*for_write=*/false);
    if (!block.ok()) {
      return block.status();
    }
    proc_.machine().Charge(hw::kMemWordCopy * ((chunk + 3) / 4));  // Copy to the caller.
    std::memcpy(&out[done], &(*block)[in_block], chunk);
    done += chunk;
  }
  return done;
}

Status LibFs::Write(FileHandle file, uint32_t offset, std::span<const uint8_t> data) {
  Result<Inode> loaded = LoadInode(file);
  if (!loaded.ok()) {
    return loaded.status();
  }
  Inode inode = *loaded;
  if (inode.used == 0) {
    return Status::kErrNotFound;
  }
  if (offset + data.size() > kMaxFileBytes) {
    return Status::kErrOutOfRange;
  }
  if (offset > inode.size) {
    return Status::kErrOutOfRange;  // No holes in this little FS.
  }
  bool meta_dirty = false;
  uint32_t done = 0;
  while (done < data.size()) {
    const uint32_t pos = offset + done;
    const uint32_t index = pos / hw::kPageBytes;
    const uint32_t in_block = pos % hw::kPageBytes;
    const uint32_t chunk =
        std::min<uint32_t>(static_cast<uint32_t>(data.size()) - done, hw::kPageBytes - in_block);
    if (index >= kDirectBlocks) {
      AbortTxn();
      return Status::kErrOutOfRange;
    }
    if (pos >= inode.size && in_block == 0 && inode.direct[index] == 0) {
      // Allocate from the staged superblock image, so the bumped allocator
      // commits atomically with the inode that references the new block.
      Result<std::span<uint8_t>> super = TxnStage(kSuperBlock);
      if (!super.ok()) {
        AbortTxn();
        return super.status();
      }
      const uint32_t fresh = ReadLe32(*super, kSuperNextFreeOff);
      if (fresh >= extent_.blocks) {
        AbortTxn();
        return Status::kErrNoResources;
      }
      WriteLe32(*super, kSuperNextFreeOff, fresh + 1);
      inode.direct[index] = fresh;
      meta_dirty = true;
    }
    // Data blocks go through the cache un-journaled (metadata journaling
    // only): a crash may lose un-synced data, never metadata integrity.
    Result<std::span<uint8_t>> block = cache_->GetBlock(inode.direct[index], /*for_write=*/true);
    if (!block.ok()) {
      AbortTxn();
      return block.status();
    }
    proc_.machine().Charge(hw::kMemWordCopy * ((chunk + 3) / 4));
    std::memcpy(&(*block)[in_block], &data[done], chunk);
    done += chunk;
  }
  const uint32_t new_size = std::max(inode.size, offset + static_cast<uint32_t>(data.size()));
  if (new_size != inode.size) {
    meta_dirty = true;
    inode.size = new_size;
  }
  if (!meta_dirty) {
    return Status::kOk;  // Pure overwrite: no metadata transaction needed.
  }
  Result<std::span<uint8_t>> inodes = TxnStage(kInodeBlock);
  if (!inodes.ok()) {
    AbortTxn();
    return inodes.status();
  }
  const size_t base = file * kInodeBytes;
  WriteLe32(*inodes, base, inode.used);
  WriteLe32(*inodes, base + 4, inode.size);
  for (uint32_t i = 0; i < kDirectBlocks; ++i) {
    WriteLe32(*inodes, base + 8 + 4 * i, inode.direct[i]);
  }
  return CommitTxn();
}

Status LibFs::Sync() {
  return Checkpoint();
}

// --- Fsck ---

Status LibFs::Fsck() {
  fsck_error_.clear();
  const auto fail = [this](std::string message) {
    fsck_error_ = std::move(message);
    return Status::kErrBadState;
  };
  // Superblock. Copy the fields out: the span dies at the next GetBlock.
  Result<std::span<uint8_t>> super = cache_->GetBlock(kSuperBlock, /*for_write=*/false);
  if (!super.ok()) {
    return super.status();
  }
  if (ReadLe32(*super, kSuperMagicOff) != kMagic) {
    return fail("superblock: bad magic");
  }
  const uint32_t next_free = ReadLe32(*super, kSuperNextFreeOff);
  const uint32_t journal_start = ReadLe32(*super, kSuperJournalStartOff);
  const uint32_t journal_blocks = ReadLe32(*super, kSuperJournalBlocksOff);
  if (journal_blocks != journal_blocks_ ||
      (journal_blocks > 0 && journal_start != kJournalStart)) {
    return fail("superblock: journal geometry mismatch");
  }
  if (next_free < data_start_ || next_free > extent_.blocks) {
    return fail("superblock: allocator out of range (next_free=" + std::to_string(next_free) +
                ")");
  }
  // Inode table. Copy it out before touching the directory block.
  Result<std::span<uint8_t>> inode_block = cache_->GetBlock(kInodeBlock, /*for_write=*/false);
  if (!inode_block.ok()) {
    return inode_block.status();
  }
  std::vector<Inode> inodes(kMaxInodes);
  for (uint32_t n = 0; n < kMaxInodes; ++n) {
    const size_t base = n * kInodeBytes;
    inodes[n].used = ReadLe32(*inode_block, base);
    inodes[n].size = ReadLe32(*inode_block, base + 4);
    for (uint32_t i = 0; i < kDirectBlocks; ++i) {
      inodes[n].direct[i] = ReadLe32(*inode_block, base + 8 + 4 * i);
    }
  }
  std::vector<uint32_t> claimed;
  for (uint32_t n = 0; n < kMaxInodes; ++n) {
    const Inode& inode = inodes[n];
    if (inode.used == 0) {
      continue;
    }
    if (inode.used != 1) {
      return fail("inode " + std::to_string(n) + ": bad used flag");
    }
    if (inode.size > kMaxFileBytes) {
      return fail("inode " + std::to_string(n) + ": size out of range");
    }
    const uint32_t blocks = (inode.size + hw::kPageBytes - 1) / hw::kPageBytes;
    for (uint32_t i = 0; i < kDirectBlocks; ++i) {
      if (i < blocks) {
        if (inode.direct[i] < data_start_ || inode.direct[i] >= next_free) {
          return fail("inode " + std::to_string(n) + ": direct block " +
                      std::to_string(inode.direct[i]) + " outside allocated data region");
        }
        claimed.push_back(inode.direct[i]);
      } else if (inode.direct[i] != 0) {
        return fail("inode " + std::to_string(n) + ": direct pointer past EOF");
      }
    }
  }
  std::sort(claimed.begin(), claimed.end());
  if (std::adjacent_find(claimed.begin(), claimed.end()) != claimed.end()) {
    return fail("data block claimed by two files");
  }
  // Directory: well-formed names, live targets, and a bijection with the
  // used inodes.
  Result<std::span<uint8_t>> dir = cache_->GetBlock(kDirBlock, /*for_write=*/false);
  if (!dir.ok()) {
    return dir.status();
  }
  std::vector<bool> referenced(kMaxInodes, false);
  for (size_t e = 0; e < kDirEntries; ++e) {
    const uint8_t* entry = &(*dir)[e * kDirEntryBytes];
    if (entry[0] == 0) {
      continue;
    }
    const size_t len = strnlen(reinterpret_cast<const char*>(entry), 28);
    if (len > kMaxNameBytes) {
      return fail("directory entry " + std::to_string(e) + ": unterminated name");
    }
    const uint32_t target = ReadLe32(*dir, e * kDirEntryBytes + 28);
    if (target >= kMaxInodes) {
      return fail("directory entry " + std::to_string(e) + ": inode out of range");
    }
    if (inodes[target].used == 0) {
      return fail("directory entry " + std::to_string(e) + ": dangling (inode " +
                  std::to_string(target) + " free)");
    }
    if (referenced[target]) {
      return fail("inode " + std::to_string(target) + " referenced by two directory entries");
    }
    referenced[target] = true;
  }
  for (uint32_t n = 0; n < kMaxInodes; ++n) {
    if (inodes[n].used == 1 && !referenced[n]) {
      return fail("inode " + std::to_string(n) + " used but unreachable from the directory");
    }
  }
  return Status::kOk;
}

}  // namespace xok::exos
