#include "src/exos/fs.h"

#include <cstring>

namespace xok::exos {

using hw::Instr;

namespace {

uint32_t ReadLe32(std::span<const uint8_t> bytes, size_t off) {
  uint32_t value = 0;
  std::memcpy(&value, &bytes[off], 4);
  return value;
}

void WriteLe32(std::span<uint8_t> bytes, size_t off, uint32_t value) {
  std::memcpy(&bytes[off], &value, 4);
}

constexpr size_t kDirEntryBytes = 32;  // 28-byte name + 4-byte inode.
constexpr size_t kDirEntries = hw::kPageBytes / kDirEntryBytes;
constexpr size_t kInodeBytes = 64;

}  // namespace

// --- BlockCache ---

Result<std::unique_ptr<BlockCache>> BlockCache::Create(
    Process& proc, const aegis::Aegis::DiskExtentGrant& extent, size_t slots) {
  if (slots == 0) {
    return Status::kErrInvalidArgs;
  }
  auto cache = std::unique_ptr<BlockCache>(new BlockCache(proc, extent));
  for (size_t i = 0; i < slots; ++i) {
    Result<aegis::PageGrant> frame = proc.kernel().SysAllocPage();
    if (!frame.ok()) {
      return frame.status();
    }
    cache->frames_.push_back(frame->page);
    cache->frame_caps_.push_back(frame->cap);
    cache->slots_.push_back(Slot{});
  }
  return cache;
}

size_t BlockCache::PickVictim() const {
  // Prefer an invalid slot.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].valid) {
      return i;
    }
  }
  if (policy_ == Policy::kCustom && picker_) {
    const size_t choice = picker_(slots_);
    return choice < slots_.size() ? choice : 0;
  }
  size_t best = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    const bool better = policy_ == Policy::kMru ? slots_[i].last_use > slots_[best].last_use
                                                : slots_[i].last_use < slots_[best].last_use;
    if (better) {
      best = i;
    }
  }
  return best;
}

Status BlockCache::Transfer(uint32_t block, size_t slot, bool write) {
  uint64_t backoff = hw::kClockHz / 10000;  // 0.1 ms before the first retry.
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    const Status status =
        write ? proc_.kernel().SysDiskWrite(extent_.extent, extent_.cap, block, frames_[slot])
              : proc_.kernel().SysDiskRead(extent_.extent, extent_.cap, block, frames_[slot]);
    if (status != Status::kErrIo) {
      return status;
    }
    // Media error: back off and retry. Storage robustness is library
    // policy here — a different libFS could fail fast or remap instead.
    ++io_retries_;
    proc_.kernel().SysSleep(backoff);
    backoff *= 2;
  }
  return Status::kErrIo;
}

Status BlockCache::WriteBack(size_t slot) {
  if (!slots_[slot].valid || !slots_[slot].dirty) {
    return Status::kOk;
  }
  const Status status = Transfer(slots_[slot].block, slot, /*write=*/true);
  if (status == Status::kOk) {
    slots_[slot].dirty = false;
  }
  return status;
}

Result<std::span<uint8_t>> BlockCache::GetBlock(uint32_t block, bool for_write) {
  if (block >= extent_.blocks) {
    return Status::kErrOutOfRange;
  }
  proc_.machine().Charge(Instr(10));  // Cache lookup.
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].valid && slots_[i].block == block) {
      ++hits_;
      slots_[i].last_use = ++tick_;
      slots_[i].dirty = slots_[i].dirty || for_write;
      return proc_.machine().mem().PageSpan(frames_[i]);
    }
  }
  ++misses_;
  const size_t victim = PickVictim();
  proc_.machine().Charge(Instr(20));  // Policy + bookkeeping.
  const Status flush = WriteBack(victim);
  if (flush != Status::kOk) {
    return flush;
  }
  const Status read = Transfer(block, victim, /*write=*/false);
  if (read != Status::kOk) {
    return read;
  }
  slots_[victim] = Slot{block, true, for_write, ++tick_};
  return proc_.machine().mem().PageSpan(frames_[victim]);
}

Status BlockCache::Flush() {
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Status status = WriteBack(i);
    if (status != Status::kOk) {
      return status;
    }
  }
  return Status::kOk;
}

BlockCache::VictimPicker MakeScanAwarePicker(uint32_t metadata_blocks) {
  return [metadata_blocks](std::span<const BlockCache::Slot> slots) -> size_t {
    // MRU among data blocks; metadata stays resident.
    size_t best = SIZE_MAX;
    uint64_t best_use = 0;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].valid || slots[i].block < metadata_blocks) {
        continue;
      }
      if (best == SIZE_MAX || slots[i].last_use > best_use) {
        best = i;
        best_use = slots[i].last_use;
      }
    }
    if (best != SIZE_MAX) {
      return best;
    }
    // Only metadata resident: fall back to plain LRU.
    size_t lru = 0;
    for (size_t i = 1; i < slots.size(); ++i) {
      if (slots[i].last_use < slots[lru].last_use) {
        lru = i;
      }
    }
    return lru;
  };
}

// --- LibFs ---

Result<std::unique_ptr<LibFs>> LibFs::Format(Process& proc,
                                             const aegis::Aegis::DiskExtentGrant& extent,
                                             size_t cache_slots) {
  if (extent.blocks < kDataStart + 1) {
    return Status::kErrInvalidArgs;
  }
  Result<std::unique_ptr<BlockCache>> cache = BlockCache::Create(proc, extent, cache_slots);
  if (!cache.ok()) {
    return cache.status();
  }
  auto fs = std::unique_ptr<LibFs>(new LibFs(proc, std::move(*cache)));
  // Superblock.
  Result<std::span<uint8_t>> super = fs->cache_->GetBlock(kSuperBlock, /*for_write=*/true);
  if (!super.ok()) {
    return super.status();
  }
  std::fill(super->begin(), super->end(), uint8_t{0});
  WriteLe32(*super, 0, kMagic);
  WriteLe32(*super, 4, kDataStart);  // Next free data block.
  // Empty directory and inode table.
  for (uint32_t block : {kDirBlock, kInodeBlock}) {
    Result<std::span<uint8_t>> bytes = fs->cache_->GetBlock(block, /*for_write=*/true);
    if (!bytes.ok()) {
      return bytes.status();
    }
    std::fill(bytes->begin(), bytes->end(), uint8_t{0});
  }
  const Status sync = fs->Sync();
  if (sync != Status::kOk) {
    return sync;
  }
  return fs;
}

Result<std::unique_ptr<LibFs>> LibFs::Mount(Process& proc,
                                            const aegis::Aegis::DiskExtentGrant& extent,
                                            size_t cache_slots) {
  Result<std::unique_ptr<BlockCache>> cache = BlockCache::Create(proc, extent, cache_slots);
  if (!cache.ok()) {
    return cache.status();
  }
  auto fs = std::unique_ptr<LibFs>(new LibFs(proc, std::move(*cache)));
  Result<std::span<uint8_t>> super = fs->cache_->GetBlock(kSuperBlock, /*for_write=*/false);
  if (!super.ok()) {
    return super.status();
  }
  if (ReadLe32(*super, 0) != kMagic) {
    return Status::kErrBadState;
  }
  return fs;
}

Result<LibFs::Inode> LibFs::LoadInode(FileHandle file) {
  if (file >= kMaxInodes) {
    return Status::kErrOutOfRange;
  }
  Result<std::span<uint8_t>> block = cache_->GetBlock(kInodeBlock, /*for_write=*/false);
  if (!block.ok()) {
    return block.status();
  }
  Inode inode;
  const size_t base = file * kInodeBytes;
  inode.used = ReadLe32(*block, base);
  inode.size = ReadLe32(*block, base + 4);
  for (uint32_t i = 0; i < kDirectBlocks; ++i) {
    inode.direct[i] = ReadLe32(*block, base + 8 + 4 * i);
  }
  return inode;
}

Status LibFs::StoreInode(FileHandle file, const Inode& inode) {
  Result<std::span<uint8_t>> block = cache_->GetBlock(kInodeBlock, /*for_write=*/true);
  if (!block.ok()) {
    return block.status();
  }
  const size_t base = file * kInodeBytes;
  WriteLe32(*block, base, inode.used);
  WriteLe32(*block, base + 4, inode.size);
  for (uint32_t i = 0; i < kDirectBlocks; ++i) {
    WriteLe32(*block, base + 8 + 4 * i, inode.direct[i]);
  }
  return Status::kOk;
}

Result<uint32_t> LibFs::AllocDataBlock() {
  Result<std::span<uint8_t>> super = cache_->GetBlock(kSuperBlock, /*for_write=*/true);
  if (!super.ok()) {
    return super.status();
  }
  const uint32_t next = ReadLe32(*super, 4);
  if (next >= cache_->extent_blocks()) {
    return Status::kErrNoResources;
  }
  WriteLe32(*super, 4, next + 1);
  return next;
}

Result<FileHandle> LibFs::Create(std::string_view name) {
  if (name.empty() || name.size() > kMaxNameBytes) {
    return Status::kErrInvalidArgs;
  }
  if (Open(name).ok()) {
    return Status::kErrAlreadyExists;
  }
  // Find a free inode.
  FileHandle handle = kMaxInodes;
  for (FileHandle i = 0; i < kMaxInodes; ++i) {
    Result<Inode> inode = LoadInode(i);
    if (inode.ok() && inode->used == 0) {
      handle = i;
      break;
    }
  }
  if (handle == kMaxInodes) {
    return Status::kErrNoResources;
  }
  // Find a free directory entry.
  Result<std::span<uint8_t>> dir = cache_->GetBlock(kDirBlock, /*for_write=*/true);
  if (!dir.ok()) {
    return dir.status();
  }
  for (size_t e = 0; e < kDirEntries; ++e) {
    uint8_t* entry = &(*dir)[e * kDirEntryBytes];
    if (entry[0] == 0) {
      std::memcpy(entry, name.data(), name.size());
      entry[name.size()] = 0;
      WriteLe32(*dir, e * kDirEntryBytes + 28, handle);
      Inode inode;
      inode.used = 1;
      return StoreInode(handle, inode) == Status::kOk ? Result<FileHandle>(handle)
                                                      : Result<FileHandle>(Status::kErrInternal);
    }
  }
  return Status::kErrNoResources;
}

Result<FileHandle> LibFs::Open(std::string_view name) {
  Result<std::span<uint8_t>> dir = cache_->GetBlock(kDirBlock, /*for_write=*/false);
  if (!dir.ok()) {
    return dir.status();
  }
  for (size_t e = 0; e < kDirEntries; ++e) {
    const uint8_t* entry = &(*dir)[e * kDirEntryBytes];
    if (entry[0] == 0) {
      continue;
    }
    const size_t len = strnlen(reinterpret_cast<const char*>(entry), 28);
    if (len == name.size() && std::memcmp(entry, name.data(), len) == 0) {
      return ReadLe32(*dir, e * kDirEntryBytes + 28);
    }
  }
  return Status::kErrNotFound;
}

Result<uint32_t> LibFs::FileSize(FileHandle file) {
  Result<Inode> inode = LoadInode(file);
  if (!inode.ok()) {
    return inode.status();
  }
  if (inode->used == 0) {
    return Status::kErrNotFound;
  }
  return inode->size;
}

Result<uint32_t> LibFs::Read(FileHandle file, uint32_t offset, std::span<uint8_t> out) {
  Result<Inode> inode = LoadInode(file);
  if (!inode.ok()) {
    return inode.status();
  }
  if (inode->used == 0) {
    return Status::kErrNotFound;
  }
  if (offset >= inode->size) {
    return 0u;
  }
  uint32_t todo = std::min<uint32_t>(static_cast<uint32_t>(out.size()), inode->size - offset);
  uint32_t done = 0;
  while (done < todo) {
    const uint32_t pos = offset + done;
    const uint32_t index = pos / hw::kPageBytes;
    const uint32_t in_block = pos % hw::kPageBytes;
    const uint32_t chunk = std::min(todo - done, hw::kPageBytes - in_block);
    Result<std::span<uint8_t>> block =
        cache_->GetBlock(inode->direct[index], /*for_write=*/false);
    if (!block.ok()) {
      return block.status();
    }
    proc_.machine().Charge(hw::kMemWordCopy * ((chunk + 3) / 4));  // Copy to the caller.
    std::memcpy(&out[done], &(*block)[in_block], chunk);
    done += chunk;
  }
  return done;
}

Status LibFs::Write(FileHandle file, uint32_t offset, std::span<const uint8_t> data) {
  Result<Inode> loaded = LoadInode(file);
  if (!loaded.ok()) {
    return loaded.status();
  }
  Inode inode = *loaded;
  if (inode.used == 0) {
    return Status::kErrNotFound;
  }
  if (offset + data.size() > kMaxFileBytes) {
    return Status::kErrOutOfRange;
  }
  if (offset > inode.size) {
    return Status::kErrOutOfRange;  // No holes in this little FS.
  }
  uint32_t done = 0;
  while (done < data.size()) {
    const uint32_t pos = offset + done;
    const uint32_t index = pos / hw::kPageBytes;
    const uint32_t in_block = pos % hw::kPageBytes;
    const uint32_t chunk =
        std::min<uint32_t>(static_cast<uint32_t>(data.size()) - done, hw::kPageBytes - in_block);
    if (index >= kDirectBlocks) {
      return Status::kErrOutOfRange;
    }
    if (pos >= inode.size && in_block == 0 && inode.direct[index] == 0) {
      Result<uint32_t> fresh = AllocDataBlock();
      if (!fresh.ok()) {
        return fresh.status();
      }
      inode.direct[index] = *fresh;
    }
    Result<std::span<uint8_t>> block = cache_->GetBlock(inode.direct[index], /*for_write=*/true);
    if (!block.ok()) {
      return block.status();
    }
    proc_.machine().Charge(hw::kMemWordCopy * ((chunk + 3) / 4));
    std::memcpy(&(*block)[in_block], &data[done], chunk);
    done += chunk;
  }
  inode.size = std::max(inode.size, offset + static_cast<uint32_t>(data.size()));
  return StoreInode(file, inode);
}

}  // namespace xok::exos
