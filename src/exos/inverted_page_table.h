// An inverted page table for ExOS (paper §7: "many other abstractions,
// such as page-table structures ... cannot be modified in micro-kernels";
// the exokernel's whole point is that ExOS can swap this structure freely
// — the kernel only ever sees TLB-write requests).
//
// Structure: an open-addressed hash table sized by the *physical* memory,
// as classic inverted tables are — space is O(frames), not O(address
// space), which wins for the sparse address spaces big programs actually
// have. Lookup probes linearly from hash(vpn).
#ifndef XOK_SRC_EXOS_INVERTED_PAGE_TABLE_H_
#define XOK_SRC_EXOS_INVERTED_PAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/exos/page_table.h"

namespace xok::exos {

class InvertedPageTable {
 public:
  // `frames` bounds residency: sized to the machine's physical memory (or
  // the libOS's share of it). The table holds 2x slots to keep probe
  // chains short.
  explicit InvertedPageTable(uint32_t frames)
      : slots_(NextPow2(frames * 2)), mask_(static_cast<uint32_t>(slots_.size() - 1)) {}

  // Same contract as PageTable::Lookup: nullptr if `vpn` has no slot.
  Pte* Lookup(hw::Vpn vpn) {
    uint32_t probe = Hash(vpn) & mask_;
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[probe];
      if (!slot.occupied) {
        return nullptr;
      }
      if (slot.vpn == vpn) {
        return &slot.pte;
      }
      probe = (probe + 1) & mask_;
    }
    return nullptr;
  }

  // Same contract as PageTable::LookupOrCreate. Aborts (returns the last
  // probed slot's PTE) only if the table is completely full, which the
  // libOS prevents by sizing it to its frame budget.
  Pte& LookupOrCreate(hw::Vpn vpn) {
    uint32_t probe = Hash(vpn) & mask_;
    for (uint32_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[probe];
      if (!slot.occupied) {
        slot.occupied = true;
        slot.vpn = vpn;
        slot.pte = Pte{};
        ++occupied_;
        return slot.pte;
      }
      if (slot.vpn == vpn) {
        return slot.pte;
      }
      probe = (probe + 1) & mask_;
    }
    return slots_[probe].pte;  // Table full: caller exceeded its budget.
  }

  template <typename Fn>
  void ForEachPresent(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.occupied && slot.pte.present) {
        fn(slot.vpn, slot.pte);
      }
    }
  }

  // Resident-set bookkeeping for the space comparison.
  size_t slot_count() const { return slots_.size(); }
  size_t occupied() const { return occupied_; }
  // Bytes of table structure (the inverted table's selling point).
  size_t footprint_bytes() const { return slots_.size() * sizeof(Slot); }

 private:
  struct Slot {
    bool occupied = false;
    hw::Vpn vpn = 0;
    Pte pte;
  };

  static uint32_t NextPow2(uint32_t n) {
    uint32_t p = 16;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  static uint32_t Hash(hw::Vpn vpn) {
    uint32_t x = vpn;
    x ^= x >> 16;
    x *= 0x7feb352du;
    x ^= x >> 15;
    x *= 0x846ca68bu;
    x ^= x >> 16;
    return x;
  }

  std::vector<Slot> slots_;
  uint32_t mask_;
  size_t occupied_ = 0;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_INVERTED_PAGE_TABLE_H_
