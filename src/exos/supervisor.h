// ExOS supervision tree: an init-style supervisor environment, written
// entirely as untrusted library policy over three kernel primitives —
// SysEnvAlive/SysEnvStats (global visibility of who is alive and making
// progress), death-notification wakeups (a kill or exit wakes blocked
// peers early), and SysKillEnv (forced reap with the child's env_cap).
//
// The supervisor spawns children from ChildSpecs, then sits in a
// sample-sleep loop: when a child dies it restarts it according to its
// RestartPolicy with exponential backoff; when a child stops making
// progress (its cycles+syscalls counters freeze for `stall_samples`
// consecutive samples) the supervisor kills and restarts it; a child
// that exceeds max_restarts is declared a permanent failure. Run()
// returns when no child is running or waiting to restart.
#ifndef XOK_SRC_EXOS_SUPERVISOR_H_
#define XOK_SRC_EXOS_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/exos/process.h"

namespace xok::exos {

enum class RestartPolicy : uint8_t {
  kNever,      // Never restart; any exit is final.
  kOnFailure,  // Restart on crash/kill; clean SysExit is final.
  kAlways,     // Restart on any exit (a service that should run forever).
};

enum class ChildState : uint8_t {
  kRunning,
  kBackoff,   // Dead; respawn scheduled at restart_at.
  kDone,      // Exited and policy says leave it.
  kFailed,    // Crash-looped past max_restarts.
};

struct ChildSpec {
  std::string name;
  std::function<void(Process&)> body;
  Process::Options options;
  RestartPolicy policy = RestartPolicy::kOnFailure;
  // Observation hook, fired from the supervisor's fiber on every
  // supervision-state transition (respawned, backing off, done, failed).
  // Pure library policy: the server libOS uses it to re-steer a dead
  // shard's traffic to a sibling while the child is down.
  std::function<void(ChildState)> on_state_change;
  // Restarts allowed before the child is declared permanently failed
  // (crash-loop breaker).
  uint32_t max_restarts = 4;
  // Exponential backoff between a death and the respawn, in cycles.
  uint64_t backoff_initial = 50'000;
  uint64_t backoff_cap = 800'000;
  // Heartbeat: a child whose progress counters (cycles_on_cpu +
  // syscalls) are unchanged for this many consecutive samples is deemed
  // wedged and killed. 0 disables stall detection.
  uint32_t stall_samples = 0;
};

struct ChildStatus {
  std::string name;
  ChildState state = ChildState::kRunning;
  aegis::EnvId env = aegis::kNoEnv;  // Current (or last) incarnation.
  uint32_t restarts = 0;
  uint32_t stall_kills = 0;  // Restarts forced by heartbeat stalls.
};

// The supervisor owns its own environment: construction spawns it, and
// its fiber runs the supervision loop. Child Processes are created from
// that fiber. Query Wait()/status() from the host after Aegis::Run().
class Supervisor {
 public:
  struct Options {
    // Cycles between liveness/heartbeat samples. Death notifications
    // wake the loop early, so this bounds stall detection latency, not
    // crash-restart latency.
    uint64_t sample_interval = 100'000;
    Process::Options process;  // Options for the supervisor env itself.
  };

  Supervisor(aegis::Aegis& kernel, std::vector<ChildSpec> specs,
             const Options& options);
  Supervisor(aegis::Aegis& kernel, std::vector<ChildSpec> specs)
      : Supervisor(kernel, std::move(specs), Options{}) {}

  bool ok() const { return proc_ != nullptr && proc_->ok(); }
  aegis::EnvId id() const { return proc_->id(); }
  Process& process() { return *proc_; }

  // Snapshot of every child's supervision state (valid once Run ends,
  // or mid-run from another fiber).
  const std::vector<ChildStatus>& status() const { return status_; }
  // Current (or last) incarnation of child `i`, nullptr if none spawned
  // yet. Mid-run access from another fiber is safe (cooperative fibers);
  // chaos tests use this to obtain a live child's env_cap for SysKillEnv.
  const Process* child(size_t i) const {
    return i < children_.size() ? children_[i].proc.get() : nullptr;
  }
  uint64_t samples() const { return samples_; }
  uint32_t total_restarts() const;
  // True when the loop finished (all children done/failed) rather than
  // the supervisor itself being killed mid-flight.
  bool finished() const { return finished_; }

 private:
  struct Child {
    ChildSpec spec;
    std::unique_ptr<Process> proc;
    ChildState state = ChildState::kRunning;
    uint32_t restarts = 0;
    uint32_t stall_kills = 0;
    uint64_t backoff = 0;      // Next backoff delay.
    uint64_t restart_at = 0;   // Cycle to respawn at (kBackoff only).
    uint64_t last_progress = 0;
    uint32_t stalled = 0;      // Consecutive samples with no progress.
  };

  void Main();
  void Spawn(Child& child);
  // State transition + the spec's observation hook.
  void SetState(Child& child, ChildState state);
  // Moves a dead child to kBackoff/kDone/kFailed per policy; `crashed`
  // distinguishes kill/crash from clean exit.
  void HandleDeath(Child& child, bool crashed, uint64_t now);
  void PublishStatus();

  aegis::Aegis& kernel_;
  Options options_;
  std::vector<Child> children_;
  std::vector<ChildStatus> status_;
  std::unique_ptr<Process> proc_;
  uint64_t samples_ = 0;
  bool finished_ = false;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_SUPERVISOR_H_
