#include "src/exos/process.h"

namespace xok::exos {

using aegis::EnvSpec;
using aegis::ExcAction;
using aegis::PctArgs;
using hw::Instr;

Process::Process(aegis::Aegis& kernel, std::function<void(Process&)> main,
                 const Options& options)
    : kernel_(kernel), vm_(kernel, options.page_table) {
  vm_.set_demand_zero(options.demand_zero);

  EnvSpec spec;
  spec.slices = options.slices;
  spec.cpu_mask = options.cpu_mask;
  spec.entry = [this, main = std::move(main)]() { main(*this); };
  spec.handlers.exception = [this](const hw::TrapFrame& frame) { return OnException(frame); };
  // Default interrupt context: save the general-purpose context (the
  // application does its own context switching — paper §5.1.1). Library
  // schedulers may override via set_timer_epilogue.
  spec.handlers.timer_epilogue = [this]() {
    if (epilogue_) {
      epilogue_();
    } else {
      machine().Charge(Instr(30));
    }
  };
  spec.handlers.pct_sync = [this](const PctArgs& args) {
    return pct_server_ ? pct_server_(args) : PctArgs{};
  };
  spec.handlers.pct_async = [this](const PctArgs& args) {
    if (pct_async_) {
      pct_async_(args);
    }
  };
  spec.handlers.revoke = [this](uint32_t pages) { OnRevoke(pages); };

  Result<aegis::EnvGrant> grant = kernel_.CreateEnv(std::move(spec));
  if (grant.ok()) {
    id_ = grant->env;
    env_cap_ = grant->cap;
  }
}

ExcAction Process::OnException(const hw::TrapFrame& frame) {
  switch (frame.type) {
    case hw::ExceptionType::kTlbMissLoad:
    case hw::ExceptionType::kTlbMissStore:
    case hw::ExceptionType::kTlbModify:
      return vm_.HandleException(frame);
    default:
      return raw_exception_ ? raw_exception_(frame) : ExcAction::kSkip;
  }
}

void Process::OnRevoke(uint32_t pages) {
  if (revoke_) {
    revoke_(pages);
    return;
  }
  // Default policy: comply by releasing clean pages first (cheap victims).
  vm_.ReleasePages(pages);
}

}  // namespace xok::exos
