// ExOS revocation client: the library-OS side of the kernel's resource
// pressure protocol (paper §3.4–3.5), as one object that owns the repair
// policy for every abstraction a process built on revocable resources.
//
// The contract has two halves, split by what may block:
//
//   * The revoke handler (installed on the Process) is the non-blocking
//     half. Visible revocation can arrive at interrupt level on an
//     arbitrary fiber, so the handler may only do work that never sleeps:
//     release invalid/clean block-cache frames, release clean VM pages,
//     and note that dirty state kept frames alive (flush_wanted).
//   * Poll() is the blocking half, run from the environment's own main
//     loop on its own fiber. It drains the repossession vector and
//     dispatches per-subsystem repairs — Vm page-table repair, LibFS
//     cache/journal-frame repair, pktring and trace-ring rebind-or-
//     fallback — then performs the victim-save flush (so the *next*
//     revocation finds clean frames to yield voluntarily) and re-admits
//     the environment to CPUs it lost slices on.
//
// Everything here is untrusted library policy; a different libOS could
// refuse to comply entirely and live with the abort protocol.
#ifndef XOK_SRC_EXOS_REVOCATION_H_
#define XOK_SRC_EXOS_REVOCATION_H_

#include <cstdint>

#include "src/exos/fs.h"
#include "src/exos/process.h"
#include "src/exos/tracelib.h"
#include "src/exos/udp.h"

namespace xok::exos {

class RevocationClient {
 public:
  struct Options {
    LibFs* fs = nullptr;
    UdpSocket* socket = nullptr;
    TraceSession* trace = nullptr;
    // Slice-slot target for re-admission after slice revocation; 0
    // disables re-admission (the env keeps whatever it has left).
    uint32_t desired_slices = 0;
  };

  struct Stats {
    uint64_t revocations_seen = 0;    // Revoke-handler invocations.
    uint64_t pages_released = 0;      // Pages yielded voluntarily (VM).
    uint64_t cache_frames_released = 0;  // Clean cache frames yielded.
    uint64_t pages_repossessed = 0;   // Seen via SysReadRepossessed.
    uint64_t fs_repairs = 0;          // Cache slots / raw frames repaired.
    uint64_t fs_flushes = 0;          // Victim-save flushes run by Poll.
    uint64_t socket_repairs = 0;      // Pktring rebinds (or fallbacks).
    uint64_t trace_repairs = 0;       // Trace-ring rebinds.
    uint64_t slices_readmitted = 0;   // Slots re-acquired after revocation.
    uint64_t polls = 0;
  };

  // Installs the revoke handler on `proc` immediately. Construct inside
  // the environment (its entry function) so repairs run on its fiber.
  RevocationClient(Process& proc, Options options);

  // Blocking repair pass; call regularly from the environment's main
  // loop. Returns the first repair error (repairs keep going past it).
  Status Poll();

  const Stats& stats() const { return stats_; }
  bool flush_wanted() const { return flush_wanted_; }

 private:
  void OnRevoke(uint32_t pages);

  Process& proc_;
  Options options_;
  Stats stats_;
  // Set by the handler when dirty blocks kept cache frames alive through
  // a revocation; Poll flushes them so future revocations find clean
  // victims (the LibFS victim-save policy).
  bool flush_wanted_ = false;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_REVOCATION_H_
