#include "src/exos/server/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "src/exos/revocation.h"
#include "src/exos/tracelib.h"
#include "src/net/wire.h"


namespace xok::exos::server {

namespace {

// SplitMix64: the stream is a pure function of the seed, so a failing
// chaos seed replays exactly (print the seed, rerun with XOK_CHAOS_SEEDS).
struct SplitMix {
  uint64_t state;
  explicit SplitMix(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint32_t Below(uint32_t n) { return n == 0 ? 0 : static_cast<uint32_t>(Next() % n); }
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }
};

enum class Kind : uint8_t { kGet, kPut, kMalformed, kOversized, kQuit };

struct Pending {
  Kind kind = Kind::kGet;
  int key_index = -1;
  int expect_status = 200;
  bool is_hot = false;
  bool hedged = false;       // One hedge per GET, ever.
  uint32_t retries = 0;
  uint64_t first_send = 0;
  uint64_t last_send = 0;
  uint64_t deadline = 0;       // Absolute TTL (0 = none); also in payload.
  uint64_t backoff = 0;        // Next retransmit wait before jitter.
  uint64_t next_retry_at = 0;  // Earliest retransmit cycle.
  uint64_t not_before = 0;     // Retry-After pacing floor from a 503.
  std::vector<uint8_t> payload;  // Kept verbatim for retransmission.
};

// Garbage HTTP text variants for the malformed arm: every one has a valid
// envelope (so it reaches a worker) and must be answered 400 — none may
// ever equal a canonical request, and none may crash the parser.
std::string MalformedText(SplitMix& rng, std::string_view key) {
  switch (rng.Below(8)) {
    case 0: return "get /" + std::string(key) + " HTTP/1.0\r\n\r\n";   // Lowercase method.
    case 1: return "GET " + std::string(key) + " HTTP/1.0\r\n\r\n";    // No leading '/'.
    case 2: return "GET /" + std::string(key) + " HTTP/1.1\r\n\r\n";   // Wrong version.
    case 3: return "GET /" + std::string(key) + " HTTP/1.0\r\njunk\r\n\r\n";  // No ':' header.
    case 4: return "PUT /" + std::string(key) + " HTTP/1.0\r\n\r\nbody";      // No length.
    case 5: return "PUT /" + std::string(key) +
                   " HTTP/1.0\r\nContent-Length: 9999\r\n\r\nshort";   // Oversized length.
    case 6: return "GET /" + std::string(key) + " HTTP/1.0\r\nX: 1\r\n";  // No blank line.
    default: {
      std::string junk(24, '\0');
      for (char& c : junk) {
        c = static_cast<char>(1 + rng.Below(255));  // Binary noise.
      }
      return junk;
    }
  }
}

}  // namespace

std::string LoadKeyName(uint32_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%03u", i);
  return buf;
}

std::string MakeValue(std::string_view key, uint32_t version, uint32_t value_bytes) {
  std::string value(key);
  value += '#';
  value += std::to_string(version);
  value += '#';
  const uint32_t h = KeyHash(key);
  while (value.size() < value_bytes) {
    value += static_cast<char>('a' + (h + version + value.size()) % 26);
  }
  return value;
}

int ParseValueVersion(std::string_view key, std::string_view body, uint32_t value_bytes) {
  const size_t prefix = key.size() + 1;
  if (body.size() < prefix + 2 || body.substr(0, key.size()) != key || body[key.size()] != '#') {
    return -1;
  }
  const size_t end = body.find('#', prefix);
  if (end == std::string_view::npos || end == prefix || end - prefix > 9) {
    return -1;
  }
  uint32_t version = 0;
  for (size_t i = prefix; i < end; ++i) {
    if (body[i] < '0' || body[i] > '9') {
      return -1;
    }
    version = version * 10 + static_cast<uint32_t>(body[i] - '0');
  }
  // Every byte must match the canonical image, padding included.
  return body == MakeValue(key, version, value_bytes) ? static_cast<int>(version) : -1;
}

std::vector<std::pair<std::string, std::string>> MakePreload(uint32_t keys,
                                                             uint32_t value_bytes) {
  std::vector<std::pair<std::string, std::string>> preload;
  for (uint32_t i = 0; i < keys; ++i) {
    const std::string key = LoadKeyName(i);
    preload.emplace_back(key, MakeValue(key, 0, value_bytes));
  }
  return preload;
}

LatencySummary SummarizeLatencies(std::vector<uint64_t> samples) {
  LatencySummary summary;
  if (samples.empty()) {
    return summary;
  }
  std::sort(samples.begin(), samples.end());
  summary.count = samples.size();
  // Nearest-rank percentiles. A p99 needs a tail to stand on: below 100
  // samples the 99th and 99.9th ranks both degenerate to the max, so they
  // report 0 with the flag raised instead of a masquerading maximum.
  summary.p50 = reqtrace::Percentile(samples, 500);
  if (samples.size() >= 100) {
    summary.p99 = reqtrace::Percentile(samples, 990);
    summary.p999 = reqtrace::Percentile(samples, 999);
  } else {
    summary.samples_insufficient = true;
  }
  summary.max = samples.back();
  double total = 0;
  for (uint64_t s : samples) {
    total += static_cast<double>(s);
  }
  summary.mean = total / static_cast<double>(samples.size());
  return summary;
}

double LoadStats::Rps() const {
  if (elapsed_cycles == 0) {
    return 0.0;
  }
  return static_cast<double>(acked) * static_cast<double>(hw::kClockHz) /
         static_cast<double>(elapsed_cycles);
}

LoadStats RunLoadGen(Process& proc, const LoadGenTarget& target,
                     const WorkloadConfig& config) {
  LoadStats stats;
  SplitMix rng(config.seed);

  // Zipf CDF over the key universe: weight(i) = 1/(i+1)^s.
  std::vector<double> cdf(config.keys, 0.0);
  double total_weight = 0.0;
  for (uint32_t i = 0; i < config.keys; ++i) {
    total_weight += 1.0 / std::pow(static_cast<double>(i + 1), config.zipf_s);
    cdf[i] = total_weight;
  }
  for (double& c : cdf) {
    c /= total_weight;
  }
  auto draw_key = [&] {
    const double u = rng.Unit();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<uint32_t>(std::min<ptrdiff_t>(it - cdf.begin(), config.keys - 1));
  };

  const std::string hot_key = target.hot_key.empty() ? LoadKeyName(0) : target.hot_key;

  UdpSocket sock(proc, target.iface);
  Status bound = Status::kErrInternal;
  if (config.use_ring) {
    bound = sock.BindRing(config.client_port, config.ring);
  }
  if (bound != Status::kOk) {
    bound = sock.Bind(config.client_port);
  }
  if (bound != Status::kOk) {
    stats.unexpected = ~0ull;  // Could not even bind; poison the stats.
    return stats;
  }

  std::optional<RevocationClient> rc;
  if (config.repair) {
    RevocationClient::Options rc_options;
    rc_options.socket = &sock;
    rc.emplace(proc, rc_options);
  }
  auto repair = [&] {
    if (rc) {
      (void)rc->Poll();
    }
  };

  std::optional<TraceSession> trace;
  if (config.trace) {
    trace.emplace(proc);
    TraceConfig trace_config;
    trace_config.pages = 8;
    trace_config.mask = xtrace::Bit(xtrace::Event::kDpfMatch) |
                        xtrace::Bit(xtrace::Event::kAppMark) |
                        xtrace::Bit(xtrace::Event::kDiskSubmit) |
                        xtrace::Bit(xtrace::Event::kDiskComplete);
    if (trace->Bind(trace_config) != Status::kOk) {
      trace.reset();
    }
  }
  std::vector<uint64_t> service_samples;
  std::unordered_map<uint32_t, uint64_t> service_enter;
  auto drain_trace = [&] {
    if (!trace) {
      return;
    }
    for (;;) {
      Result<xtrace::Record> record = trace->Next();
      if (!record.ok()) {
        break;
      }
      stats.trace_records.push_back(*record);  // For reqtrace assembly.
      const auto type = static_cast<xtrace::Event>(record->type);
      if (type == xtrace::Event::kDpfMatch) {
        // The client's own filter also logs matches (the replies coming
        // back); only count the server-side demux decisions.
        if (sock.filter_id().has_value() && record->arg0 == *sock.filter_id()) {
          continue;
        }
        if (record->arg2 == 0) {
          ++stats.stages.path_queue;
        } else if (record->arg2 == 1) {
          ++stats.stages.path_ring;
        } else {
          ++stats.stages.path_ash;
        }
      } else if (type == xtrace::Event::kAppMark) {
        if (record->arg1 == reqtrace::kPhaseEnter) {
          service_enter[record->arg0] = record->cycle;
        } else if (record->arg1 == reqtrace::kPhaseExit) {
          auto it = service_enter.find(record->arg0);
          if (it != service_enter.end()) {
            service_samples.push_back(record->cycle - it->second);
            service_enter.erase(it);
          }
        }
      }
    }
  };

  // Per-key highest version this client ever wrote (0 = the preload).
  std::vector<uint32_t> latest_version(config.keys, 0);

  std::unordered_map<uint32_t, Pending> outstanding;
  std::unordered_set<uint32_t> done_ids;
  std::vector<uint64_t> latencies;
  std::vector<uint64_t> hot_latencies;
  // (req id, first-send -> ack) per acked data request: the SLO ledger
  // and the join key into reqtrace timelines for late-request attribution.
  std::vector<std::pair<uint32_t, uint64_t>> acked_rtts;

  uint32_t next_id = 1;
  uint32_t data_sent = 0;
  uint32_t in_burst = 0;
  bool quits_queued = false;
  const uint64_t run_start = proc.kernel().SysGetCycles();
  uint64_t data_phase_end = 0;
  uint64_t next_send_at = 0;  // Open-loop pacing cursor (set post-warmup).

  auto transmit = [&](const std::vector<uint8_t>& payload) {
    if (sock.ring_bound()) {
      if (sock.QueueTo(target.server_ip, target.server_port, payload) != Status::kOk) {
        (void)sock.SendTo(target.server_ip, target.server_port, payload);
      }
    } else {
      (void)sock.SendTo(target.server_ip, target.server_port, payload);
    }
  };
  auto flush = [&] {
    if (sock.ring_bound()) {
      (void)sock.FlushTx();
    }
  };

  // Jitter draws come off their own stream so turning them on (or a
  // different retry history) never perturbs which requests the workload
  // sends — the data stream stays a pure function of the seed.
  SplitMix retry_rng(config.seed ^ 0x7265747279ull);  // "retry"
  auto retry_wait = [&](Pending& pending) {
    uint64_t wait = pending.backoff;
    if (config.retry_backoff_cap_cycles > 0) {
      pending.backoff = std::min(pending.backoff * 2, config.retry_backoff_cap_cycles);
    }
    if (config.retry_jitter && wait >= 2) {
      const uint64_t half = wait / 2;
      wait = half + retry_rng.Next() % (wait - half + 1);
    }
    return wait;
  };

  auto send_new = [&](Pending pending) {
    const uint32_t id = next_id++;
    pending.first_send = pending.last_send = proc.kernel().SysGetCycles();
    pending.backoff = config.retry_timeout_cycles;
    pending.next_retry_at = pending.first_send + retry_wait(pending);
    if ((trace || config.mark_requests) && pending.kind != Kind::kQuit) {
      // First-send boundary of this request's critical-path timeline
      // (retransmits deliberately unmarked: the timeline measures the
      // request, not each copy of it).
      (void)proc.kernel().SysTraceMark(id, reqtrace::kPhaseClientSend, 0, 0);
    }
    transmit(pending.payload);
    outstanding.emplace(id, std::move(pending));
    ++stats.sent;
  };

  auto make_data_request = [&](uint32_t id) {
    Pending pending;
    if (config.request_ttl_cycles > 0) {
      pending.deadline = proc.kernel().SysGetCycles() + config.request_ttl_cycles;
    }
    const uint64_t ttl = pending.deadline;  // Into the envelope (0 = none).
    const uint32_t draw = rng.Below(1000);
    const uint32_t key_index = draw_key();
    const std::string key = LoadKeyName(key_index);
    if (draw < config.malformed_per_mille) {
      pending.kind = Kind::kMalformed;
      pending.expect_status = 400;
      pending.payload = BuildRequestPayload(id, MalformedText(rng, key), key, -1, ttl);
    } else if (draw < config.malformed_per_mille + config.oversized_per_mille) {
      pending.kind = Kind::kOversized;
      pending.expect_status = 400;
      const std::string big_key(kMaxKeyBytes + 13, 'x');
      pending.payload = BuildRequestPayload(id, BuildGetRequest(big_key), big_key, -1, ttl);
    } else if (draw <
               config.malformed_per_mille + config.oversized_per_mille + config.put_per_mille) {
      pending.kind = Kind::kPut;
      pending.key_index = static_cast<int>(key_index);
      pending.expect_status = 201;
      const uint32_t version = ++latest_version[key_index];
      pending.payload = BuildRequestPayload(
          id, BuildPutRequest(key, MakeValue(key, version, config.value_bytes)), key, -1, ttl);
    } else {
      pending.kind = Kind::kGet;
      pending.key_index = static_cast<int>(key_index);
      pending.expect_status = 200;
      pending.is_hot = key == hot_key;
      pending.payload = BuildRequestPayload(id, BuildGetRequest(key), key, -1, ttl);
    }
    return pending;
  };

  // Readiness warm-up: a booting worker (journaled format + preload) is
  // tens of millions of cycles away from serving; probe each shard with a
  // GET for a key that cannot exist (any parseable reply — 404 — counts as
  // ready) so the measured data phase and its retry budget start against a
  // live service. Probe ids join done_ids so late duplicate replies to
  // retransmitted probes are classified as dup_acks, not "unexpected".
  if (config.warmup) {
    for (uint32_t shard = 0; shard < target.workers; ++shard) {
      const uint32_t id = next_id++;
      const auto probe = BuildRequestPayload(
          id, BuildGetRequest("__warmup__"), "__warmup__", static_cast<int>(shard));
      uint64_t last_probe = 0;
      bool ready = false;
      while (!ready) {
        const uint64_t now = proc.kernel().SysGetCycles();
        if (now - run_start > config.deadline_cycles) {
          stats.deadline_hit = 1;
          stats.warmup_cycles = now - run_start;
          (void)sock.Close();
          return stats;
        }
        if (last_probe == 0 || now - last_probe >= config.warmup_probe_cycles) {
          transmit(probe);
          flush();
          last_probe = now;
        }
        for (;;) {
          Result<Datagram> reply = sock.Recv(/*blocking=*/false);
          if (!reply.ok()) {
            break;
          }
          HttpResponseView view;
          if (ParseResponsePayload(reply->payload, &view) && view.req_id == id) {
            ready = true;
          }
        }
        if (!ready) {
          repair();
          proc.kernel().SysSleep(2'000);
        }
      }
      done_ids.insert(id);
    }
  }

  // Warmup is unmeasured; its trace records (probe timelines riding the
  // server's multi-megacycle boot) would otherwise pollute the data-phase
  // stage percentiles, so drain and discard them before the clock starts.
  // The legacy path counters keep their whole-run semantics.
  drain_trace();
  stats.trace_records.clear();

  const uint64_t start = proc.kernel().SysGetCycles();
  stats.warmup_cycles = start - run_start;
  next_send_at = start;

  for (;;) {
    const uint64_t now = proc.kernel().SysGetCycles();
    if (now - run_start > config.deadline_cycles) {
      stats.deadline_hit = 1;
      break;
    }

    // Fill: open-loop pacing (arrivals indifferent to server state) or
    // the closed-loop window.
    bool queued = false;
    if (config.open_loop_interval_cycles > 0) {
      while (data_sent < config.requests &&
             proc.kernel().SysGetCycles() >= next_send_at) {
        Pending pending = make_data_request(next_id);
        send_new(std::move(pending));
        ++data_sent;
        next_send_at += config.open_loop_interval_cycles;
        queued = true;
      }
    } else {
      while (outstanding.size() < config.window && data_sent < config.requests) {
        // next_id is consumed inside send_new; build against its value.
        Pending pending = make_data_request(next_id);
        send_new(std::move(pending));
        ++data_sent;
        queued = true;
        if (config.burst > 0 && ++in_burst >= config.burst) {
          in_burst = 0;
          flush();
          queued = false;
          if (config.burst_gap_cycles > 0) {
            proc.kernel().SysSleep(config.burst_gap_cycles);
          }
          if (config.slow_per_mille > 0 && rng.Below(1000) < config.slow_per_mille) {
            // Slow client: stop collecting replies for a while; the server
            // keeps queueing into our ring (or the kernel queue) meanwhile.
            proc.kernel().SysSleep(config.slow_stall_cycles);
          }
        }
      }
    }
    if (queued) {
      flush();
    }

    // Data phase complete: timestamp it once, then queue the QUITs.
    if (data_sent == config.requests && outstanding.empty() && !quits_queued) {
      if (data_phase_end == 0) {
        data_phase_end = proc.kernel().SysGetCycles();
      }
      quits_queued = true;
      if (config.quit_when_done) {
        for (uint32_t shard = 0; shard < target.workers; ++shard) {
          Pending pending;
          pending.kind = Kind::kQuit;
          pending.expect_status = 200;
          pending.payload = BuildRequestPayload(next_id, BuildQuitRequest(), "",
                                                static_cast<int>(shard));
          send_new(std::move(pending));
        }
        flush();
      }
    }
    if (quits_queued && outstanding.empty()) {
      break;
    }

    // Collect replies.
    bool progressed = false;
    for (;;) {
      Result<Datagram> reply = sock.Recv(/*blocking=*/false);
      if (!reply.ok()) {
        break;
      }
      progressed = true;
      HttpResponseView view;
      if (!ParseResponsePayload(reply->payload, &view)) {
        ++stats.unexpected;
        continue;
      }
      auto it = outstanding.find(view.req_id);
      if (it == outstanding.end()) {
        if (done_ids.count(view.req_id) > 0) {
          ++stats.dup_acks;  // Second answer to a retried request.
        } else {
          ++stats.unexpected;
        }
        continue;
      }
      Pending& pending = it->second;
      if (view.status == 503) {
        // Transient server-side refusal (overload shed, degraded write,
        // revoked store page): not an ack. Leave it outstanding — the
        // retry path re-asks, paced by the server's Retry-After hint
        // when it sent one.
        ++stats.busy_503;
        if (view.retry_after_us > 0) {
          ++stats.retry_after;
          pending.not_before = proc.kernel().SysGetCycles() +
                               view.retry_after_us * (hw::kClockHz / 1'000'000);
        }
        continue;
      }
      ++stats.acked;
      if (view.stale) {
        ++stats.stale_200;  // Degraded-mode cache read; body still verified.
      }
      if ((trace || config.mark_requests) && pending.kind != Kind::kQuit) {
        // Ack boundary, marked BEFORE the rtt clock read below so the
        // timeline's covered total can never exceed the latency it is
        // attributed against.
        (void)proc.kernel().SysTraceMark(view.req_id, reqtrace::kPhaseClientAck,
                                         static_cast<uint32_t>(view.status), 0);
      }
      const uint64_t rtt = proc.kernel().SysGetCycles() - pending.first_send;
      if (pending.kind != Kind::kQuit) {
        latencies.push_back(rtt);
        if (pending.is_hot) {
          hot_latencies.push_back(rtt);
        }
        acked_rtts.emplace_back(view.req_id, rtt);
      }
      switch (view.status) {
        case 200: ++stats.ok_200; break;
        case 201: ++stats.created_201; break;
        case 400: ++stats.bad_400; break;
        case 404: ++stats.not_found_404; break;
        default: break;
      }
      if (view.status != pending.expect_status) {
        ++stats.unexpected;
      }
      if (pending.kind == Kind::kGet && view.status == 200) {
        // End-to-end verification: checksum, then the body must be an
        // exact value image at a version we actually wrote (older acked
        // versions are legal after a worker restart; anything else is
        // corruption).
        const int version = view.sum_ok
                                ? ParseValueVersion(LoadKeyName(pending.key_index), view.body,
                                                    config.value_bytes)
                                : -1;
        if (version < 0 ||
            static_cast<uint32_t>(version) > latest_version[pending.key_index]) {
          ++stats.corrupt;
        }
      }
      done_ids.insert(view.req_id);
      outstanding.erase(it);
    }
    drain_trace();

    // Retransmit / hedge / abandon sweep. Runs every iteration (not just
    // idle ones) so hedges and TTL abandons fire on time even while other
    // shards keep the reply stream busy.
    {
      std::vector<uint32_t> abandoned;
      std::vector<uint32_t> expired;
      const uint64_t check = proc.kernel().SysGetCycles();
      bool resent = false;
      for (auto& [id, pending] : outstanding) {
        if (pending.deadline != 0 && check > pending.deadline) {
          // The server sheds this id on sight now; retrying buys nothing.
          expired.push_back(id);
          continue;
        }
        if (config.hedge_after_cycles > 0 && pending.kind == Kind::kGet &&
            !pending.hedged && check - pending.first_send >= config.hedge_after_cycles) {
          // Hedged read: one early duplicate toward the same shard. A
          // straggler answers the duplicate; a second reply to the
          // original lands as a dup_ack.
          pending.hedged = true;
          ++stats.hedges;
          transmit(pending.payload);
          resent = true;
        }
        if (check < pending.next_retry_at || check < pending.not_before) {
          continue;
        }
        if (pending.retries >= config.max_retries) {
          abandoned.push_back(id);
          continue;
        }
        ++pending.retries;
        ++stats.retries;
        pending.last_send = check;
        pending.next_retry_at = check + retry_wait(pending);
        transmit(pending.payload);
        resent = true;
      }
      if (resent) {
        flush();
      }
      for (uint32_t id : abandoned) {
        outstanding.erase(id);
        ++stats.gave_up;
      }
      for (uint32_t id : expired) {
        outstanding.erase(id);
        ++stats.ttl_abandoned;
        done_ids.insert(id);  // A late answer is a dup, not "unexpected".
      }
    }

    if (!progressed) {
      repair();
      proc.kernel().SysSleep(500);
    }
  }

  if (data_phase_end == 0) {
    data_phase_end = proc.kernel().SysGetCycles();
  }
  stats.elapsed_cycles = data_phase_end - start;
  stats.latency = SummarizeLatencies(std::move(latencies));
  stats.hot_latency = SummarizeLatencies(std::move(hot_latencies));
  drain_trace();
  stats.stages.service = SummarizeLatencies(std::move(service_samples));
  if (trace) {
    (void)trace->Close();
  }
  // Critical-path assembly: join every drained record into per-request
  // timelines and aggregate the all-requests class. Library policy over
  // kernel mechanism end to end — the kernel only ever saw 32-byte records.
  reqtrace::Collector collector(
      reqtrace::Collector::Options{.keep_last = 32, .keep_all = true});
  if (!stats.trace_records.empty()) {
    collector.AddAll(stats.trace_records);
    stats.reqs.timelines = collector.completed(reqtrace::Class::kAll);
    for (uint32_t s = 0; s < reqtrace::kSpanCount; ++s) {
      stats.reqs.span[s] = SummarizeLatencies(
          collector.samples(reqtrace::Class::kAll, static_cast<reqtrace::Span>(s)));
    }
    // Attribution is judged against the client's send->ack clock, so the
    // covered summary only admits timelines anchored at both ends (wire
    // implies the send mark joined; ack implies the client closed it).
    // Server-only timelines (in-flight at drain, rescued duplicates) still
    // feed the per-span tables above but would dilute coverage here.
    std::vector<uint64_t> covered_samples;
    for (const reqtrace::RequestTimeline& t : collector.all()) {
      stats.reqs.disk_ios += t.disk_ios;
      if (t.complete && t.seen[static_cast<uint32_t>(reqtrace::Span::kWire)] &&
          t.seen[static_cast<uint32_t>(reqtrace::Span::kAck)]) {
        covered_samples.push_back(t.Total());
      }
    }
    stats.reqs.covered = SummarizeLatencies(std::move(covered_samples));
  }
  if (config.slo_cycles > 0) {
    stats.slo.slo_cycles = config.slo_cycles;
    // Never-acked requests are the third SLO bucket: the client (TTL) or
    // its retry budget shed them, so they were neither good nor late.
    stats.slo.shed = stats.ttl_abandoned + stats.gave_up;
    std::vector<uint64_t> late_samples[reqtrace::kSpanCount];
    for (const auto& [req_id, rtt] : acked_rtts) {
      if (rtt <= config.slo_cycles) {
        ++stats.slo.good;
        continue;
      }
      ++stats.slo.late;
      // Attribute the miss: where did THIS request's cycles go?
      if (const reqtrace::RequestTimeline* t = collector.Find(req_id)) {
        for (uint32_t s = 0; s < reqtrace::kSpanCount; ++s) {
          if (t->seen[s]) {
            late_samples[s].push_back(t->span[s]);
          }
        }
      }
    }
    for (uint32_t s = 0; s < reqtrace::kSpanCount; ++s) {
      stats.slo.late_span[s] = SummarizeLatencies(std::move(late_samples[s]));
    }
  }
  (void)sock.Close();
  return stats;
}

}  // namespace xok::exos::server
