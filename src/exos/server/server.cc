#include "src/exos/server/server.h"

#include <algorithm>
#include <cstring>

#include "src/ash/ash.h"
#include "src/exos/reqtrace.h"
#include "src/exos/revocation.h"
#include "src/net/wire.h"

namespace xok::exos::server {

using hw::Instr;

dpf::Atom KvServer::ShardAtom(uint32_t shard, uint32_t workers) {
  return dpf::Atom{.offset = net::kUdpPayloadOff,
                   .width = 1,
                   .mask = workers - 1,
                   .value = shard & (workers - 1)};
}

KvServer::KvServer(aegis::Aegis& kernel, KvServerConfig config)
    : kernel_(kernel), config_(std::move(config)) {
  const uint32_t n = config_.workers;
  if (n == 0 || (n & (n - 1)) != 0 || n > 256) {
    return;  // Shard mask needs a power of two; ok() stays false.
  }
  const uint32_t cpus = kernel_.machine().cpu_count();
  steer_.orphaned.assign(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  if (config_.stride_slices_per_cpu > 0) {
    // Placeholder slots now; each worker incarnation Retargets its slot
    // to its fresh environment id from inside WorkerMain.
    stride_ = std::make_unique<SmpStrideScheduler>(kernel_);
    for (uint32_t i = 0; i < n; ++i) {
      workers_[i]->stride_slot =
          stride_->AddClient(aegis::kNoEnv, config_.stride_tickets, i % cpus);
    }
    if (!stride_->Start(config_.stride_slices_per_cpu)) {
      stride_.reset();
      return;
    }
  }
  std::vector<ChildSpec> specs;
  for (uint32_t i = 0; i < n; ++i) {
    ChildSpec spec;
    spec.name = "kv" + std::to_string(i);
    spec.body = [this, i](Process& p) { WorkerMain(p, i); };
    spec.options.slices = config_.worker_slices;
    spec.options.cpu_mask = 1ULL << (i % cpus);
    spec.policy = RestartPolicy::kOnFailure;
    spec.on_state_change = [this, i](ChildState s) { OnChildState(i, s); };
    spec.max_restarts = config_.max_restarts;
    spec.backoff_initial = config_.restart_backoff;
    spec.backoff_cap = config_.restart_backoff_cap;
    specs.push_back(std::move(spec));
  }
  supervisor_ = std::make_unique<Supervisor>(kernel_, std::move(specs));
}

void KvServer::OnChildState(uint32_t shard, ChildState state) {
  // kDone is a deliberate QUIT — clients stopped sending to that shard,
  // so there is nothing to rescue. kBackoff/kFailed leave live traffic
  // with no filter to land on: that is the orphan case.
  const bool orphan = state == ChildState::kBackoff || state == ChildState::kFailed;
  if (orphan == static_cast<bool>(steer_.orphaned[shard])) {
    return;
  }
  steer_.orphaned[shard] = orphan;
  if (orphan) {
    ++steer_.orphans;
    if (steer_.rescuer == static_cast<int>(shard)) {
      // The rescuer itself died; release the claim so a sibling takes over.
      steer_.rescue_claimed = false;
      steer_.rescuer = -1;
    }
  } else {
    --steer_.orphans;
  }
}

uint64_t KvServer::ReadAshCounter(hw::PageId page) const {
  auto bytes = kernel_.machine().mem().PageSpan(page);
  uint32_t v = 0;
  std::memcpy(&v, bytes.data(), sizeof(v));
  return v;
}

uint64_t KvServer::AshHits(uint32_t shard) const {
  const WorkerState& ws = *workers_[shard];
  uint64_t hits = ws.stats.ash_hits;
  if (ws.ash_bound) {
    hits += ReadAshCounter(ws.ash_page);
  }
  return hits;
}

uint64_t KvServer::TotalAshHits() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < config_.workers; ++i) {
    total += AshHits(i);
  }
  return total;
}

bool KvServer::AllWorkersDone() const {
  for (const auto& ws : workers_) {
    if (!ws->stats.done) {
      return false;
    }
  }
  return true;
}

Status KvServer::BindHotKeyAsh(Process& proc, WorkerState& ws, uint32_t shard,
                               const std::string& key, const std::string& value) {
  Result<aegis::PageGrant> region = proc.kernel().SysAllocPage();
  if (!region.ok()) {
    return region.status();
  }
  const std::string req_text = BuildGetRequest(key);

  // Prebuilt reply frame in the region: envelope (req id patched per
  // request) + the canonical 200 response for the preloaded value.
  const std::string resp_text = BuildHttpResponse(200, value);
  std::vector<uint8_t> resp_payload(kRespHeaderBytes + resp_text.size());
  std::copy(resp_text.begin(), resp_text.end(), resp_payload.begin() + kRespHeaderBytes);
  const uint64_t peer_mac = config_.iface.resolve
                                ? config_.iface.resolve(config_.ash_peer_ip)
                                : hw::kBroadcastMac;
  std::vector<uint8_t> frame = net::BuildUdpFrame(
      peer_mac, config_.iface.mac, config_.iface.ip, config_.ash_peer_ip,
      config_.port, config_.ash_peer_port, resp_payload);
  // The ASH patches the request id into the template without fixing up the
  // UDP checksum; zero it (RFC 768 "no checksum") so the patched frame
  // stays well-formed. X-Sum carries the end-to-end integrity instead.
  frame[net::kUdpCksumOff] = 0;
  frame[net::kUdpCksumOff + 1] = 0;

  constexpr uint32_t kReplyOff = 64;  // Counter word + checksum sink below.
  auto region_bytes = proc.machine().mem().PageSpan(region->page);
  if (kReplyOff + frame.size() > region_bytes.size()) {
    return Status::kErrOutOfRange;
  }
  std::fill(region_bytes.begin(), region_bytes.begin() + kReplyOff, 0);
  std::copy(frame.begin(), frame.end(), region_bytes.begin() + kReplyOff);

  Result<ash::AshProgram> handler = ash::BuildKvReplyAsh(ash::KvReplyAshSpec{
      .req_id_off = net::kUdpPayloadOff + 1,
      .reply_off = kReplyOff,
      .reply_len = static_cast<uint32_t>(frame.size()),
      .reply_req_id_off = net::kUdpPayloadOff,
      .cksum_off = net::kUdpPayloadOff,
      .cksum_len = static_cast<uint32_t>(kReqHeaderBytes + req_text.size()),
      .cksum_sum_off = 4,
      .count_off = 0,
  });
  if (!handler.ok()) {
    return handler.status();
  }

  // The filter is the port + shard atoms plus the *entire* canonical GET
  // text, byte for byte. It must be this exact: a matched ASH consumes
  // its frame, so anything that merely resembles the hot GET (bad
  // version, trailing garbage in the request line) has to miss here and
  // fall through to the shallower ring filter, where the worker's strict
  // parser answers 400. Depth is also what layers the paths: more atoms
  // than the ring filter means DPF's most-specific-match sends hot GETs
  // here and everything else below.
  aegis::FilterBindSpec spec;
  spec.filter = dpf::UdpPortFilter(config_.port);
  spec.filter.atoms.push_back(ShardAtom(shard, config_.workers));
  for (size_t i = 0; i < req_text.size(); ++i) {
    spec.filter.atoms.push_back(dpf::Atom{
        .offset = net::kUdpPayloadOff + static_cast<uint32_t>(kReqHeaderBytes + i),
        .width = 1,
        .mask = 0xff,
        .value = static_cast<uint8_t>(req_text[i]),
    });
  }
  spec.handler = std::move(*handler);
  spec.region_first_page = region->page;
  spec.region_pages = 1;
  if (config_.trace_requests) {
    // Hot-path answers never reach a worker, so the tagged kDpfMatch
    // record is the ONLY server-side event an ASH request leaves behind —
    // it is what lets the tracer classify those timelines at all.
    spec.trace_tag_off = net::kUdpPayloadOff + 1;
  }
  Result<dpf::FilterId> id = proc.kernel().SysBindFilter(std::move(spec), region->cap);
  if (!id.ok()) {
    return id.status();
  }
  ws.ash_page = region->page;
  ws.ash_bound = true;
  return Status::kOk;
}

void KvServer::WorkerMain(Process& proc, uint32_t shard) {
  WorkerState& ws = *workers_[shard];
  ++ws.stats.incarnations;
  ws.ash_bound = false;
  if (stride_) {
    stride_->Retarget(ws.stride_slot, proc.id());
  }
  // Setup failures crash the incarnation so the Supervisor retries with
  // backoff — by the next attempt a resource storm may have passed.
  auto fail = [&] {
    ++ws.stats.setup_failures;
    (void)proc.kernel().SysKillEnv(proc.id(), proc.env_cap());
  };

  // The receive path comes up FIRST: ring if configured (falling back to
  // the legacy queue when no contiguous page run exists), refined to this
  // worker's shard of the key space by the masked payload atom. Binding
  // before the (slow, journaled) storage setup means requests arriving
  // during format/preload queue in the ring instead of timing out against
  // an unbound port — exactly why Cheetah owned its own receive buffers.
  UdpSocket sock(proc, config_.iface);
  if (config_.trace_requests) {
    // Program the demux to tag this shard's kDpfMatch records with the
    // request id from the client envelope — the tracer's wire->demux join.
    sock.set_trace_tag_off(net::kUdpPayloadOff + 1);
  }
  std::vector<dpf::Atom> shard_atoms{ShardAtom(shard, config_.workers)};
  Status bound = Status::kErrInternal;
  if (config_.use_rings) {
    bound = sock.BindRing(config_.port, config_.ring, shard_atoms);
  }
  if (bound != Status::kOk) {
    bound = sock.Bind(config_.port, shard_atoms);
  }
  if (bound != Status::kOk) {
    return fail();
  }

  // Shared-nothing storage: a private extent, freshly formatted. A
  // restarted incarnation starts from the preload image (version-0
  // values); the client's end-to-end check treats any acked version as
  // valid, so data loss across a crash is visible but never corrupt.
  Result<aegis::Aegis::DiskExtentGrant> extent =
      proc.kernel().SysAllocDiskExtent(config_.disk_blocks);
  if (!extent.ok()) {
    return fail();
  }
  LibFs::Options fs_options;
  fs_options.cache_slots = config_.fs_cache_slots;
  fs_options.journal_blocks = config_.journal_blocks;
  Result<std::unique_ptr<LibFs>> fs = LibFs::Format(proc, *extent, fs_options);
  if (!fs.ok()) {
    return fail();
  }
  KvStore store(proc, fs->get(), config_.kv_cache_entries);
  for (const auto& [key, value] : config_.preload) {
    if (ShardOf(key) != shard) {
      continue;
    }
    if (store.Put(key, value) != Status::kOk) {
      return fail();
    }
  }
  if ((*fs)->Sync() != Status::kOk) {
    return fail();
  }

  if (config_.use_ash) {
    for (const std::string& key : config_.hot_keys) {
      if (ShardOf(key) != shard) {
        continue;
      }
      Result<const KvStore::Entry*> entry = store.Get(key);
      if (entry.ok()) {
        (void)BindHotKeyAsh(proc, ws, shard, key, (*entry)->value);
      }
    }
  }

  RevocationClient::Options rc_options;
  rc_options.fs = fs->get();
  rc_options.socket = &sock;
  rc_options.desired_slices = config_.worker_slices;
  RevocationClient rc(proc, rc_options);

  bool quit = false;
  uint32_t puts_since_sync = 0;
  // Consecutive store failures with a repair Poll between every batch: a
  // streak means the storm took pages the repair protocol could not
  // restore (dirty cache, journal), so the store can no longer be
  // trusted. Individual failures answer 503 — the client's retry path
  // re-asks once repair (or the crash-restart below) completes.
  uint32_t store_err_streak = 0;

  // Read-only degraded mode: a persistent journal-disk error (kErrIo that
  // survived BlockCache's bounded retries) means every further disk touch
  // costs eight timed-out transfers. The worker stops journaling, serves
  // GETs from the value cache (marked X-Stale), refuses PUTs with 503 +
  // Retry-After, and re-probes the disk with a Sync on a timer — when one
  // lands, journaling resumes. Deliberately NOT the crash path: restarting
  // cannot fix a broken disk, but stale reads keep the shard useful.
  bool degraded = false;
  uint64_t next_probe = 0;
  auto enter_degraded = [&] {
    if (degraded) {
      return;
    }
    degraded = true;
    ++ws.stats.degraded_entries;
    next_probe = proc.machine().clock().now() + config_.degraded_probe_cycles;
  };
  auto probe_degraded = [&] {
    if (!degraded) {
      return;
    }
    const uint64_t now = proc.machine().clock().now();
    if (now < next_probe) {
      return;
    }
    if ((*fs)->Sync() == Status::kOk) {
      degraded = false;
      ++ws.stats.degraded_exits;
      ++ws.stats.syncs;
      puts_since_sync = 0;
      store_err_streak = 0;
    } else {
      next_probe = proc.machine().clock().now() + config_.degraded_probe_cycles;
    }
  };

  // Fail-fast rescue of a down sibling's shard, and the 503 builder both
  // it and the admission paths use.
  UdpSocket rescue_sock(proc, config_.iface);
  if (config_.trace_requests) {
    rescue_sock.set_trace_tag_off(net::kUdpPayloadOff + 1);
  }
  bool rescuing = false;
  auto answer_503 = [&](UdpSocket& via, const Datagram& d, std::string_view why) {
    const uint32_t rid = net::GetBe32(d.payload, 1);
    ResponseOptions opts;
    opts.retry_after_us = config_.retry_after_us;
    const std::string text = BuildHttpResponse(503, why, BodySum(why), opts);
    proc.machine().Charge(BuildCost(text.size()));
    std::vector<uint8_t> resp(kRespHeaderBytes + text.size());
    net::PutBe32(resp, 0, rid);
    std::copy(text.begin(), text.end(), resp.begin() + kRespHeaderBytes);
    if (via.SendTo(d.src_ip, d.src_port, resp) != Status::kOk) {
      ++ws.stats.send_errors;
    }
  };
  auto rescue_poll = [&] {
    if (!config_.fail_fast_resteer) {
      return;
    }
    if (!rescuing && !quit && steer_.orphans > 0 && !steer_.rescue_claimed) {
      // Cooperative fibers: no window between the check and the claim.
      // The catch-all is one atom *shallower* than every worker's shard
      // filter, so DPF's most-specific-match policy hands it exactly the
      // orphaned shards' frames — and a respawned worker's deeper filter
      // reclaims its shard the instant it rebinds, with no unbind race.
      if (rescue_sock.Bind(config_.port, {}) == Status::kOk) {
        steer_.rescue_claimed = true;
        steer_.rescuer = static_cast<int>(shard);
        rescuing = true;
      }
    } else if (rescuing && (steer_.orphans == 0 || quit)) {
      (void)rescue_sock.Close();
      steer_.rescue_claimed = false;
      steer_.rescuer = -1;
      rescuing = false;
    }
    if (!rescuing) {
      return;
    }
    // Fail fast: an immediate 503 + Retry-After beats letting the client
    // burn its full RTO discovering the shard is down.
    for (;;) {
      Result<Datagram> d = rescue_sock.Recv(/*blocking=*/false);
      if (!d.ok()) {
        break;
      }
      if (d->payload.size() < kReqHeaderBytes) {
        ++ws.stats.drops;
        continue;
      }
      answer_503(rescue_sock, *d, "shard-down");
      ++ws.stats.rescued_503;
    }
  };

  auto handle = [&](const Datagram& dgram, uint32_t depth) {
    if (dgram.payload.size() < kReqHeaderBytes) {
      ++ws.stats.drops;  // No envelope: nothing to even echo an id into.
      return;
    }
    const uint32_t req_id = net::GetBe32(dgram.payload, 1);
    ++ws.stats.requests;
    // Deadline shed comes before the trace mark, the parse, everything:
    // the sender has already given up, so any cycle spent past this line
    // is pure waste under overload.
    proc.machine().Charge(Instr(8));  // Envelope decode + admission checks.
    const uint64_t deadline = RequestDeadline(dgram.payload);
    if (config_.honor_ttl && deadline != 0 &&
        proc.machine().clock().now() > deadline) {
      ++ws.stats.expired;
      return;
    }
    // Request marks are the tracer's join points; a mark the kernel
    // refused is an attribution gap, so failures are counted, not
    // discarded (WorkerStats::trace_mark_failures).
    auto mark = [&](uint32_t phase, uint32_t a2, uint32_t a3) {
      if (proc.kernel().SysTraceMark(req_id, phase, a2, a3) != Status::kOk) {
        ++ws.stats.trace_mark_failures;
      }
    };
    if (config_.trace_requests) {
      mark(reqtrace::kPhaseEnter, shard, static_cast<uint32_t>(dgram.payload.size()));
    }
    int status = 400;
    uint32_t cls = 0;  // reqtrace::kFlag* request-class bits for the exit mark.
    std::string body;
    uint16_t sum = 0;
    bool have_sum = false;
    ResponseOptions opts;
    const bool admitted =
        config_.admission_max_batch == 0 || depth < config_.admission_max_batch;
    if (!admitted) {
      // Queue-depth admission: the backlog is already past the point
      // where serving it helps anyone. 503 before paying the parse.
      status = 503;
      body = "busy";
      opts.retry_after_us = config_.retry_after_us;
      ++ws.stats.shed_busy;
    } else {
      const std::span<const uint8_t> text(dgram.payload.data() + kReqHeaderBytes,
                                          dgram.payload.size() - kReqHeaderBytes);
      proc.machine().Charge(ParseCost(text.size()));
      HttpRequest req;
      const ParseError err = ParseHttpRequest(text, &req);
      if (config_.trace_requests) {
        mark(reqtrace::kPhaseStage, reqtrace::kStageParsed, depth);
      }
      if (err != ParseError::kOk) {
        body = ParseErrorName(err);
        ++ws.stats.bad_requests;
      } else {
        switch (req.method) {
          case Method::kQuit:
            status = 200;
            body = "bye";
            ++ws.stats.quits;
            quit = true;
            break;
          case Method::kGet: {
            ++ws.stats.gets;
            if (std::find(config_.hot_keys.begin(), config_.hot_keys.end(),
                          req.key) != config_.hot_keys.end()) {
              // Hot-list GETs that miss the ASH (or run without one) are
              // still the hot class — tail comparisons need both sides.
              cls |= reqtrace::kFlagHot;
            }
            if (degraded) {
              // Read-only mode: cache or bust — never pay the failing
              // disk's retry latency on the request path.
              Result<const KvStore::Entry*> entry = store.GetCached(req.key);
              if (entry.ok()) {
                status = 200;
                body = (*entry)->value;
                sum = (*entry)->sum;
                have_sum = true;
                opts.stale = true;
                ++ws.stats.stale_serves;
              } else {
                // The key may well exist on the platter we cannot read:
                // 503 (come back later), not 404 (doesn't exist).
                status = 503;
                body = "degraded";
                opts.retry_after_us = config_.retry_after_us;
              }
              break;
            }
            Result<const KvStore::Entry*> entry = store.Get(req.key);
            if (entry.ok()) {
              status = 200;
              body = (*entry)->value;
              sum = (*entry)->sum;  // Precomputed at PUT — never per GET.
              have_sum = true;
              store_err_streak = 0;
            } else if (entry.status() == Status::kErrNotFound) {
              status = 404;
              ++ws.stats.not_found;
              store_err_streak = 0;
            } else if (entry.status() == Status::kErrIo) {
              enter_degraded();
              status = 503;
              body = "degraded";
              opts.retry_after_us = config_.retry_after_us;
              ++ws.stats.store_errors;
            } else {
              status = 503;
              body = "store-error";
              ++ws.stats.store_errors;
              ++store_err_streak;
            }
            break;
          }
          case Method::kPut: {
            ++ws.stats.puts;
            cls |= reqtrace::kFlagPut;
            if (degraded) {
              status = 503;
              body = "read-only";
              opts.retry_after_us = config_.retry_after_us;
              ++ws.stats.shed_writes;
              break;
            }
            if (config_.admission_write_shed != 0 &&
                depth >= config_.admission_write_shed) {
              // Writes shed before reads: a PUT costs a journal append
              // plus its share of the next Sync; under pressure the
              // cheap GETs are the goodput worth protecting.
              status = 503;
              body = "write-shed";
              opts.retry_after_us = config_.retry_after_us;
              ++ws.stats.shed_writes;
              break;
            }
            const Status put = store.Put(req.key, req.body);
            if (put == Status::kOk) {
              status = 201;
              ++puts_since_sync;
              store_err_streak = 0;
            } else if (put == Status::kErrIo) {
              enter_degraded();
              status = 503;
              body = "read-only";
              opts.retry_after_us = config_.retry_after_us;
              ++ws.stats.shed_writes;
            } else {
              status = 503;
              body = "put-failed";
              ++ws.stats.store_errors;
              ++store_err_streak;
            }
            break;
          }
        }
      }
      if (config_.trace_requests) {
        // Stage boundary: storage work (KV/journal, incl. disk waits) is
        // done; everything from here to the exit mark is response build +
        // TX. Shed (!admitted) requests skip both stage marks and their
        // whole service time telescopes into the tx span.
        mark(reqtrace::kPhaseStage, reqtrace::kStageStored, depth);
      }
    }
    const std::string resp_text =
        BuildHttpResponse(status, body, have_sum ? sum : BodySum(body), opts);
    proc.machine().Charge(BuildCost(resp_text.size()));
    std::vector<uint8_t> resp(kRespHeaderBytes + resp_text.size());
    net::PutBe32(resp, 0, req_id);
    std::copy(resp_text.begin(), resp_text.end(), resp.begin() + kRespHeaderBytes);
    const Status sent = sock.ring_bound()
                            ? sock.QueueTo(dgram.src_ip, dgram.src_port, resp)
                            : sock.SendTo(dgram.src_ip, dgram.src_port, resp);
    if (sent != Status::kOk) {
      ++ws.stats.send_errors;
    }
    if (config_.trace_requests) {
      if (opts.stale) {
        cls |= reqtrace::kFlagStale;
      }
      mark(reqtrace::kPhaseExit, static_cast<uint32_t>(status),
           (static_cast<uint32_t>(resp.size()) & 0xffffu) | cls);
    }
  };

  uint32_t recv_errors = 0;
  while (!quit) {
    rescue_poll();
    probe_degraded();
    // Rescue duty and degraded probing both need the loop to keep turning
    // without traffic on the main socket, so they switch Recv to polling.
    const bool block = !rescuing && !degraded;
    Result<Datagram> first = sock.Recv(block);
    if (!first.ok()) {
      // A revoked binding surfaces here; Poll repairs it. A worker that
      // cannot be repaired crashes into the Supervisor's restart path
      // rather than spinning forever.
      (void)rc.Poll();
      if (block) {
        if (++recv_errors > 64) {
          return fail();
        }
        proc.kernel().SysSleep(1'000);
      } else {
        proc.kernel().SysSleep(2'000);  // Idle poll tick.
      }
      continue;
    }
    recv_errors = 0;
    ++ws.stats.batches;
    // Drain-batch: process everything already delivered, then ring the
    // TX doorbell once for the whole batch. `depth` is the admission
    // controller's queue-length signal — how deep into the backlog this
    // request sat when the worker got to it.
    uint32_t depth = 0;
    Datagram dgram = std::move(*first);
    for (;;) {
      handle(dgram, depth++);
      Result<Datagram> next = sock.Recv(/*blocking=*/false);
      if (!next.ok()) {
        break;
      }
      dgram = std::move(*next);
    }
    if (sock.ring_bound()) {
      (void)sock.FlushTx();
    }
    (void)rc.Poll();
    if (store_err_streak > 16) {
      ++ws.stats.store_crashes;
      (void)proc.kernel().SysKillEnv(proc.id(), proc.env_cap());
      return;
    }
    if (!degraded && puts_since_sync >= config_.sync_every_puts) {
      const Status synced = (*fs)->Sync();
      if (synced == Status::kOk) {
        ++ws.stats.syncs;
      } else if (synced == Status::kErrIo) {
        enter_degraded();
      }
      puts_since_sync = 0;
    }
  }
  if (rescuing) {
    (void)rescue_sock.Close();
    steer_.rescue_claimed = false;
    steer_.rescuer = -1;
  }

  // Clean exit: snapshot what the host reads after the run. A clean exit
  // retains the environment's pages, but the snapshot keeps AshHits()
  // correct across restarts (each incarnation's counter starts at zero).
  if (ws.ash_bound) {
    ws.stats.ash_hits += ReadAshCounter(ws.ash_page);
    ws.ash_bound = false;
  }
  (void)(*fs)->Sync();
  ws.stats.store = store.stats();
  ws.stats.done = true;
  (void)sock.Close();
}

}  // namespace xok::exos::server
