// Seeded load generator for the HTTP/KV server: a client environment that
// replays a deterministic request stream (zipf-skewed keys, PUT/GET mix,
// bursts, slow-client stalls, malformed frames, oversized keys) against a
// server on the same simulated machine (NIC internal loopback), measuring
// the *whole software path* — client build, demux, worker, store, reply —
// in simulated cycles.
//
// Delivery is closed-loop with a bounded in-flight window; a request that
// goes unacknowledged past the retry timeout is retransmitted (UDP), so
// the generator doubles as the failover path in the chaos tests: when a
// worker is killed mid-burst, its in-flight requests simply retry until
// the Supervisor's restarted incarnation rebinds the shard filter.
//
// Every GET response is verified end to end: the X-Sum header must match
// the body, and the body must be a MakeValue() image of some version the
// client has actually written (a crash-restarted worker may legally serve
// an older acked version — data *loss* is visible, data *corruption* is
// counted in LoadStats::corrupt and must be zero).
#ifndef XOK_SRC_EXOS_SERVER_LOADGEN_H_
#define XOK_SRC_EXOS_SERVER_LOADGEN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/xtrace.h"
#include "src/exos/reqtrace.h"
#include "src/exos/server/httpkv.h"
#include "src/exos/udp.h"

namespace xok::exos::server {

// Canonical key universe: "k000", "k001", ...
std::string LoadKeyName(uint32_t i);

// Deterministic value image for (key, version): "key#version#<padding>",
// padded to `value_bytes` with characters derived from the key hash.
std::string MakeValue(std::string_view key, uint32_t version, uint32_t value_bytes);

// Parses the version out of a MakeValue image and verifies every other
// byte; returns the version, or -1 if `body` is not a valid image for
// `key` at any version.
int ParseValueVersion(std::string_view key, std::string_view body, uint32_t value_bytes);

// Preload image shared by server and client: every key at version 0.
std::vector<std::pair<std::string, std::string>> MakePreload(uint32_t keys,
                                                             uint32_t value_bytes);

struct WorkloadConfig {
  uint64_t seed = 1;
  uint32_t requests = 200;     // Data requests (QUITs and retries extra).
  uint32_t keys = 12;
  double zipf_s = 1.1;         // Key popularity skew (zipf exponent).
  uint32_t value_bytes = 64;
  uint32_t put_per_mille = 150;
  uint32_t malformed_per_mille = 0;  // Valid envelope, garbage text: expect 400.
  uint32_t oversized_per_mille = 0;  // Key past kMaxKeyBytes: expect 400.
  uint32_t window = 4;               // Closed-loop in-flight cap.
  uint32_t burst = 16;               // Requests between idle gaps.
  uint64_t burst_gap_cycles = 0;
  uint32_t slow_per_mille = 0;       // Chance of a stall at a burst boundary.
  uint64_t slow_stall_cycles = 50'000;
  uint64_t retry_timeout_cycles = 100'000;
  uint32_t max_retries = 60;
  // --- Client robustness under overload ---
  // Exponential backoff: the per-request retransmit wait starts at
  // retry_timeout_cycles and doubles per retry up to this cap. 0 keeps
  // the legacy fixed-interval retransmit.
  uint64_t retry_backoff_cap_cycles = 0;
  // Seeded jitter: each wait is drawn from [wait/2, wait] off a separate
  // SplitMix stream, so two clients that lost the same burst decorrelate
  // instead of re-colliding every timeout (the workload stream itself is
  // untouched — same seed still sends the same requests).
  bool retry_jitter = false;
  // Per-request TTL: requests carry an absolute deadline (send + ttl) in
  // the envelope; the server sheds expired work before parse cost, and
  // the client stops retrying past the deadline (counted ttl_abandoned,
  // not gave_up — under deliberate overload that is the contract working,
  // not a failure). 0 = no deadlines.
  uint64_t request_ttl_cycles = 0;
  // Hedged reads: an idempotent GET still unanswered this long after its
  // first send is duplicated once without waiting for the full backoff —
  // a straggler (or dead) shard costs one extra frame instead of a tail
  // latency excursion. 0 = off. Never hedges PUTs (not idempotent here:
  // the client's version counter has moved on).
  uint64_t hedge_after_cycles = 0;
  // Open-loop overdrive: send a new request every this many cycles
  // regardless of how many are outstanding — the closed-loop window no
  // longer bounds offered load, which is how the overload bench pushes a
  // multiple of the server's peak throughput. 0 = closed loop (window).
  uint64_t open_loop_interval_cycles = 0;
  // Probe every shard (a GET for an impossible key; any reply counts)
  // before starting the measured data phase: a freshly supervised worker
  // spends tens of millions of cycles formatting its journaled file
  // system and preloading, and a closed-loop client that starts the
  // clock — and its retry budget — against a booting server measures the
  // boot, not the service.
  bool warmup = true;
  uint64_t warmup_probe_cycles = 1'000'000;  // Probe retransmit interval.
  // Poll a RevocationClient on idle ticks: under a resource-pressure
  // storm (the chaos arm) the client's own filter, ring, or pages can be
  // revoked, and a measurement client that silently goes deaf would
  // report server failures that are really its own.
  bool repair = false;
  uint64_t deadline_cycles = 2'000'000'000;  // Whole-run fail-safe.
  bool use_ring = true;
  RingConfig ring;
  uint16_t client_port = 7999;
  bool quit_when_done = true;  // One QUIT per shard after the data phase.
  // Bind the (global, one-per-kernel) trace ring and harvest kDpfMatch
  // path counts, kAppMark service times, and full per-request critical-path
  // timelines (LoadStats::stages, ::reqs) via src/exos/reqtrace.
  bool trace = false;
  // Emit the first-send/ack SysTraceMark boundaries WITHOUT binding the
  // ring (the ring is one-per-kernel): a flight-recorder observer env owns
  // it instead and assembles timelines post-mortem (DecodeRegion). Marks
  // into an unarmed or foreign ring cost nothing extra here — the client
  // is off the simulated critical path. Implied by trace.
  bool mark_requests = false;
  // SLO accounting: an acked data request slower than this (first-send ->
  // ack) counts late instead of good, and the per-stage spans of every
  // late request are aggregated into SloReport::late_span — "the p99 is
  // over budget BECAUSE of ring-wait" instead of just "it is over".
  // 0 disarms. Requires trace for the attribution half.
  uint64_t slo_cycles = 0;
};

struct LatencySummary {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  uint64_t max = 0;
  double mean = 0.0;
  // Tail percentiles need tails: below 100 samples p99/p999 report 0 with
  // this flag raised rather than masquerading the max as a percentile.
  bool samples_insufficient = false;
};
// Consumes (sorts) the sample vector; percentiles are nearest-rank.
LatencySummary SummarizeLatencies(std::vector<uint64_t> samples);

// Per-stage view from the kernel trace ring (exokernel runs only).
struct StageBreakdown {
  uint64_t path_queue = 0;  // kDpfMatch arg2 == 0 (legacy copy path).
  uint64_t path_ring = 0;   // arg2 == 1 (zero-copy ring).
  uint64_t path_ash = 0;    // arg2 == 2 (interrupt-level fast path).
  LatencySummary service;   // kAppMark enter->exit inside the worker.
};

// Per-request critical-path aggregation over the run's trace records
// (trace = true runs only), assembled by src/exos/reqtrace: per-span
// summaries for the all-requests class plus the covered total (each
// request's sum of observed spans) — the numerator of the >=90%
// attribution contract in bench_abl_reqtrace.
struct ReqTraceReport {
  uint64_t timelines = 0;  // Complete request timelines joined.
  LatencySummary span[reqtrace::kSpanCount];
  LatencySummary covered;
  uint64_t disk_ios = 0;   // Disk waits attributed inside store spans.
};

// SLO accounting (slo_cycles > 0): every acked data request is good or
// late against the budget; requests never acked at all (TTL-abandoned or
// retried out) are shed. late_span aggregates the per-stage spans of late
// requests only — the attribution of *why* the tail missed.
struct SloReport {
  uint64_t slo_cycles = 0;
  uint64_t good = 0;
  uint64_t late = 0;
  uint64_t shed = 0;
  LatencySummary late_span[reqtrace::kSpanCount];
};

struct LoadStats {
  uint64_t sent = 0;     // First transmissions (retries counted apart).
  uint64_t acked = 0;
  uint64_t retries = 0;
  uint64_t gave_up = 0;  // Abandoned after max_retries.
  uint64_t dup_acks = 0; // Second reply to a retried request (UDP).
  uint64_t busy_503 = 0; // Transient server-side failures; stayed in flight.
  uint64_t retry_after = 0;    // 503s carrying a Retry-After pacing hint.
  uint64_t stale_200 = 0;      // X-Stale GETs (degraded-mode cache reads).
  uint64_t hedges = 0;         // Early duplicate GETs (hedged reads).
  uint64_t ttl_abandoned = 0;  // Stopped retrying: request deadline passed.
  uint64_t ok_200 = 0;
  uint64_t created_201 = 0;
  uint64_t bad_400 = 0;
  uint64_t not_found_404 = 0;
  uint64_t corrupt = 0;     // X-Sum/body verification failures: must be 0.
  uint64_t unexpected = 0;  // Unparseable acks or wrong status codes.
  uint64_t deadline_hit = 0;
  uint64_t warmup_cycles = 0;   // Bind-to-ready (server boot, unmeasured).
  uint64_t elapsed_cycles = 0;  // Data phase (excludes warmup and the QUIT drain).
  LatencySummary latency;       // First-send -> ack, acked data requests.
  LatencySummary hot_latency;   // Hot-key GETs only (the ASH candidates).
  StageBreakdown stages;
  ReqTraceReport reqs;          // trace = true runs only.
  SloReport slo;                // slo_cycles > 0 runs only.
  // Raw drained trace records (trace = true): callers feed these to their
  // own reqtrace::Collector for per-class breakdowns, flight-recorder
  // prints, or anything else the summaries above did not pre-chew.
  std::vector<xtrace::Record> trace_records;

  double Rps() const;  // Acked data requests per simulated second.
};

struct LoadGenTarget {
  NetIface iface;  // The client's interface.
  uint32_t server_ip = 0;
  uint16_t server_port = 0;
  uint32_t workers = 1;   // Server shard count (QUIT addressing).
  std::string hot_key;    // Tracked in hot_latency; "" = LoadKeyName(0).
};

// Runs the workload from inside `proc`'s environment; returns when every
// request is acknowledged or abandoned (and QUITs are delivered).
LoadStats RunLoadGen(Process& proc, const LoadGenTarget& target,
                     const WorkloadConfig& config);

}  // namespace xok::exos::server

#endif  // XOK_SRC_EXOS_SERVER_LOADGEN_H_
