// HTTP/KV protocol for the Cheetah-style server libOS (paper §6.3's end
// state: a web server built *from* exokernel primitives).
//
// The protocol is HTTP/1.0 text carried in UDP payloads (and equally over
// RDP — the parser sees delivered bytes, not a transport), prefixed by a
// tiny fixed envelope the demultiplexer can route on:
//
//   request payload   [0]     shard byte (FNV-1a of the key, masked by the
//                             worker count — software RSS, expressed as a
//                             DPF atom so the *filter* does the steering)
//                     [1..4]  request id, big-endian
//                     [5..12] absolute deadline cycle, big-endian (0 = no
//                             deadline). Admission control reads it from
//                             the fixed envelope so expired work is shed
//                             *before* any parse or journal cost is paid.
//                     [13..]  "GET /key HTTP/1.0\r\n\r\n"
//                             "PUT /key HTTP/1.0\r\nContent-Length: n\r\n\r\nbody"
//                             "QUIT / HTTP/1.0\r\n\r\n"   (drain + exit)
//
//   response payload  [0..3] request id, big-endian (echoed)
//                     [4..]  "HTTP/1.0 200 OK\r\nContent-Length: n\r\n
//                             X-Sum: xxxx\r\n\r\nbody"
//                            Overloaded/degraded workers add
//                            "Retry-After: us" (back off this many
//                            simulated microseconds) and "X-Stale: 1"
//                            (read-only degraded mode served this from
//                            cache; journaling is down).
//
// X-Sum is the Internet checksum of the body, precomputed at PUT time and
// stored alongside the value (Cheetah precomputed per-file checksums the
// same way); clients verify it end to end, so neither wire corruption nor
// a buggy fast path can serve silently corrupt data.
//
// The parser is deliberately strict — every malformed shape is a distinct
// error a worker answers with 400 instead of crashing on (see the fuzz
// table in tests/server_test.cc).
#ifndef XOK_SRC_EXOS_SERVER_HTTPKV_H_
#define XOK_SRC_EXOS_SERVER_HTTPKV_H_

#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/exos/fs.h"
#include "src/exos/process.h"

namespace xok::exos::server {

inline constexpr size_t kReqHeaderBytes = 13;  // Shard + request id + deadline.
inline constexpr size_t kRespHeaderBytes = 4;  // Echoed request id.
inline constexpr size_t kMaxKeyBytes = LibFs::kMaxNameBytes;
inline constexpr size_t kMaxValueBytes = 512;
inline constexpr size_t kMaxRequestLine = 128;  // Bytes before CRLF.
inline constexpr size_t kMaxHeaderBytes = 256;  // Total header section.

// FNV-1a over the key; the low bits pick the shard byte.
uint32_t KeyHash(std::string_view key);
inline uint8_t ShardByte(std::string_view key) {
  return static_cast<uint8_t>(KeyHash(key) & 0xff);
}

enum class Method : uint8_t { kGet, kPut, kQuit };

enum class ParseError : uint8_t {
  kOk = 0,
  kTruncated,        // No CRLF-terminated request line in the input.
  kLineTooLong,      // Request line exceeds kMaxRequestLine.
  kBadMethod,        // Unknown / non-ASCII-uppercase method token.
  kBadUri,           // URI missing the leading '/' or malformed.
  kEmptyKey,         // "GET / " — zero-length key.
  kKeyTooLong,       // Key exceeds kMaxKeyBytes.
  kBadKeyChar,       // Key contains characters outside [A-Za-z0-9_.-].
  kBadVersion,       // Version token is not "HTTP/1.0".
  kHeadersTooBig,    // Header section exceeds kMaxHeaderBytes.
  kBadHeader,        // Header line without a ':' separator.
  kNoContentLength,  // PUT without a Content-Length header.
  kBadContentLength, // Content-Length not a plain decimal number.
  kValueTooLong,     // Declared body exceeds kMaxValueBytes.
  kBodyTruncated,    // Fewer body bytes than Content-Length declared.
  kNoBlankLine,      // Header section never terminated by CRLFCRLF.
};
const char* ParseErrorName(ParseError e);

struct HttpRequest {
  Method method = Method::kGet;
  std::string_view key;   // Into the caller's buffer.
  std::string_view body;  // PUT only.
};

// Parses the HTTP text (the payload *after* the 5-byte envelope). Pure:
// callers charge ParseCost() themselves so both stacks pay identically.
ParseError ParseHttpRequest(std::span<const uint8_t> text, HttpRequest* out);

// Simulated cost of parsing / building `bytes` of HTTP text.
uint64_t ParseCost(size_t bytes);
uint64_t BuildCost(size_t bytes);

// Internet checksum of the body bytes (the X-Sum header value).
uint16_t BodySum(std::string_view body);

// Optional response decorations for the overload/degraded paths.
struct ResponseOptions {
  uint32_t retry_after_us = 0;  // > 0 adds "Retry-After: <us>" (simulated us).
  bool stale = false;           // Adds "X-Stale: 1" (degraded cache read).
};

// "HTTP/1.0 <code> <reason>\r\nContent-Length: n\r\nX-Sum: xxxx\r\n\r\n<body>"
std::string BuildHttpResponse(int status, std::string_view body, uint16_t body_sum,
                              const ResponseOptions& opts);
inline std::string BuildHttpResponse(int status, std::string_view body,
                                     uint16_t body_sum) {
  return BuildHttpResponse(status, body, body_sum, ResponseOptions{});
}
inline std::string BuildHttpResponse(int status, std::string_view body) {
  return BuildHttpResponse(status, body, BodySum(body));
}

// Canonical request text (what loadgen sends; also what the ASH fast-path
// filter matches byte-for-byte).
std::string BuildGetRequest(std::string_view key);
std::string BuildPutRequest(std::string_view key, std::string_view body);
std::string BuildQuitRequest();

// Full request payload: envelope + text. `shard_override` < 0 derives the
// shard byte from the key; otherwise the byte is used as given (QUIT
// frames target a specific worker's shard this way). `deadline_cycle` is
// the absolute cycle after which the sender no longer wants an answer
// (0 = serve regardless).
std::vector<uint8_t> BuildRequestPayload(uint32_t req_id, std::string_view text,
                                         std::string_view key, int shard_override = -1,
                                         uint64_t deadline_cycle = 0);
// The envelope's deadline field (payload must be >= kReqHeaderBytes).
uint64_t RequestDeadline(std::span<const uint8_t> payload);

struct HttpResponseView {
  uint32_t req_id = 0;
  int status = 0;
  std::string_view body;  // Into the caller's buffer.
  bool sum_ok = false;    // X-Sum matched the body.
  bool stale = false;     // X-Stale: degraded-mode cache read.
  uint32_t retry_after_us = 0;  // Retry-After hint (0 = none).
};
// Parses a full response payload (envelope + text); false on malformed.
bool ParseResponsePayload(std::span<const uint8_t> payload, HttpResponseView* out);

// --- The store: journaled LibFS below, an in-library read cache above ---
//
// One KvStore per worker, over that worker's private file system (shared-
// nothing sharding: the DPF shard filter and the storage shard are the
// same split). Values are stored as [u16 length][bytes] records so an
// overwrite with a shorter value leaves no stale tail visible. The read
// cache keeps hot values (and their precomputed body checksums) in
// process memory — on the zipf workloads the paper's servers saw, nearly
// every GET is served without touching the block layer at all.
class KvStore {
 public:
  struct Entry {
    std::string value;
    uint16_t sum = 0;  // Precomputed BodySum(value).
  };
  struct Stats {
    uint64_t gets = 0;
    uint64_t puts = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t errors = 0;
  };

  KvStore(Process& proc, LibFs* fs, size_t cache_entries)
      : proc_(proc), fs_(fs), cache_entries_(cache_entries) {}

  // Write-through: value lands in the file system (creating the file on
  // first use) and the cache. kErrOutOfRange for oversized values.
  Status Put(std::string_view key, std::string_view value);
  // Cache hit or file-system fill; kErrNotFound for absent keys.
  Result<const Entry*> Get(std::string_view key);
  // Cache-only probe: never touches the block layer. kErrNotFound on a
  // miss. This is the read path of degraded (journal-disk-down) mode —
  // stale answers beat paying failing-disk retry latency per request.
  Result<const Entry*> GetCached(std::string_view key);

  const Stats& stats() const { return stats_; }

 private:
  Status ReadThrough(std::string_view key, Entry* out);
  void CacheInsert(const std::string& key, Entry entry);

  Process& proc_;
  LibFs* fs_;
  size_t cache_entries_;
  std::unordered_map<std::string, Entry> cache_;
  std::list<std::string> lru_;  // Front = oldest (FIFO eviction).
  Stats stats_;
};

}  // namespace xok::exos::server

#endif  // XOK_SRC_EXOS_SERVER_HTTPKV_H_
