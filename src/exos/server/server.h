// The Cheetah-style HTTP/KV server libOS (paper §6.3, and Cheetah in the
// exokernel retrospective): an end-to-end network service assembled
// *entirely* from exokernel primitives, with every layer that a monolithic
// kernel would own living here as untrusted library policy:
//
//   NIC --> DPF shard filters --> per-worker zero-copy packet rings
//        \-> per-worker ASH fast path (hot-key GETs answered at
//            interrupt level, worker never scheduled)
//   worker: parse (httpkv) -> KvStore (read cache) -> journaled LibFS
//        -> response built in a TX-ring slot -> one doorbell per batch
//
// Sharding is software RSS expressed in the filter language: requests
// carry a shard byte (FNV-1a of the key) and each worker's filter claims
// `shard == i` with a masked payload atom, so the *demultiplexer* spreads
// the key space across workers — no dispatcher process, no shared accept
// queue. Workers are shared-nothing: each owns a private disk extent,
// file system, and cache; DPF's most-specific-match policy layers the
// deeper ASH filter above the worker's ring filter for the same traffic.
//
// Workers run under a Supervisor (crash restart with backoff) and are
// scheduled by an application-level SmpStrideScheduler; a restarted
// worker re-registers its stride slot (Retarget) and rebinds its filters
// under the fresh environment id. The kernel never learns what a
// "request", "worker", or "shard" is.
#ifndef XOK_SRC_EXOS_SERVER_SERVER_H_
#define XOK_SRC_EXOS_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/exos/server/httpkv.h"
#include "src/exos/stride.h"
#include "src/exos/supervisor.h"
#include "src/exos/udp.h"

namespace xok::exos::server {

struct KvServerConfig {
  NetIface iface;              // The server's interface (loopback-capable).
  uint16_t port = 7080;
  uint32_t workers = 1;        // Shard count; must be a power of two.

  // Receive path: zero-copy packet rings (the Cheetah configuration) or
  // the legacy kernel-queue path (the copy-path ablation).
  bool use_rings = true;
  RingConfig ring;

  // ASH fast path: hot keys answered entirely at interrupt level. Each
  // key binds on the worker owning its shard; the filter matches the
  // canonical GET request text byte-for-byte (a matched ASH *consumes*
  // the frame, so only exact well-formed hot GETs may reach it — any
  // malformed lookalike falls through to the shallower ring filter).
  // The prebuilt reply carries the preloaded (version-0) value; X-Sum
  // keeps even the fast path end-to-end verifiable.
  bool use_ash = false;
  std::vector<std::string> hot_keys;
  uint32_t ash_peer_ip = 0;    // Reply template destination (the client).
  uint16_t ash_peer_port = 0;

  // Storage policy (per worker): journal size (0 = write-back ablation),
  // block-cache slots, in-library value-cache entries, extent size.
  uint32_t journal_blocks = LibFs::kDefaultJournalBlocks;
  size_t fs_cache_slots = 8;
  size_t kv_cache_entries = 32;
  uint32_t disk_blocks = 48;
  uint32_t sync_every_puts = 8;  // Durability point cadence.

  // Keys written into every worker's store before it starts serving
  // (only those hashing to the worker's shard land in its store).
  std::vector<std::pair<std::string, std::string>> preload;

  // Emit kAppMark enter/exit records per request (SysTraceMark); xtop's
  // RPS column and the bench per-stage breakdown read these.
  bool trace_requests = true;

  // --- Overload control (all library policy; zeros disarm each knob) ---
  // Queue-depth admission: past this many requests in one drain batch the
  // rest of the batch is answered 503 + Retry-After before any parse cost
  // is paid — a bounded backlog keeps latency for admitted work sane.
  uint32_t admission_max_batch = 0;
  // Writes shed first: past this depth PUTs are refused (503) while GETs
  // keep flowing — journal appends are the expensive half of the mix.
  uint32_t admission_write_shed = 0;
  // Retry-After hint (simulated microseconds) on every 503 the overload
  // and degraded paths emit; clients use it to pace their retries.
  uint32_t retry_after_us = 200;
  // Shed deadline-expired requests before parse cost (the sender has
  // already abandoned them). Off, the server does full parse/store/reply
  // work for corpses — the overload-bench baseline showing why goodput
  // collapses without it.
  bool honor_ttl = true;
  // Read-only degraded mode: once a persistent journal-disk error (kErrIo
  // after BlockCache's bounded retries) flips a worker to read-only, it
  // re-probes the disk with a Sync at this cadence and resumes journaling
  // when one succeeds.
  uint64_t degraded_probe_cycles = 150'000;
  // Fail-fast re-steer: while a shard's worker is down (crash-looping in
  // backoff, or failed for good) a live sibling binds a shallower
  // catch-all filter and answers that shard's traffic 503 + Retry-After
  // instead of letting it time out in the demultiplexer.
  bool fail_fast_resteer = true;

  // Supervision / scheduling.
  uint32_t max_restarts = 4;
  uint64_t restart_backoff = 50'000;
  uint64_t restart_backoff_cap = 800'000;  // Exponential doubling ceiling.
  uint32_t worker_slices = 1;        // Kernel slice slots per worker env.
  uint32_t stride_tickets = 100;     // Per worker, when stride is on.
  uint32_t stride_slices_per_cpu = 0;  // 0: no stride scheduler envs.
};

// Per-worker counters, written by the worker fiber into host memory the
// test/bench reads after (or, cooperatively, during) the run.
struct WorkerStats {
  uint64_t requests = 0;      // Frames that reached the worker loop.
  uint64_t gets = 0;
  uint64_t puts = 0;
  uint64_t quits = 0;
  uint64_t bad_requests = 0;  // Answered 400.
  uint64_t not_found = 0;     // Answered 404.
  uint64_t drops = 0;         // Too broken to even echo a request id.
  uint64_t batches = 0;       // Recv drain batches (doorbells amortised).
  uint64_t ash_hits = 0;      // Fast-path replies (snapshotted at exit).
  uint64_t syncs = 0;         // Durability points taken.
  uint64_t send_errors = 0;
  uint64_t expired = 0;         // Deadline passed: shed before parse cost.
  uint64_t shed_busy = 0;       // 503: batch depth over admission_max_batch.
  uint64_t shed_writes = 0;     // 503: PUT refused (write shed / read-only).
  uint64_t stale_serves = 0;    // Degraded-mode cache GETs (X-Stale: 1).
  uint64_t degraded_entries = 0;  // Transitions into read-only mode.
  uint64_t degraded_exits = 0;    // Recoveries (probe Sync succeeded).
  uint64_t rescued_503 = 0;     // Down-sibling frames answered 503 here.
  uint64_t trace_mark_failures = 0;  // SysTraceMark returned non-kOk: the
                                     // request tracer has an attribution
                                     // gap here, so it is counted, never
                                     // silently discarded.
  uint64_t store_errors = 0;    // Requests answered 503 (store op failed).
  uint64_t store_crashes = 0;   // Incarnations that crashed on a dead store.
  uint64_t setup_failures = 0;  // Incarnations that died before serving.
  uint32_t incarnations = 0;  // 1 + restarts that reached WorkerMain.
  bool done = false;          // Exited cleanly after a QUIT.
  KvStore::Stats store;       // Snapshot at exit.
};

class KvServer {
 public:
  KvServer(aegis::Aegis& kernel, KvServerConfig config);

  bool ok() const { return supervisor_ != nullptr && supervisor_->ok(); }

  uint32_t workers() const { return config_.workers; }
  uint32_t ShardOf(std::string_view key) const {
    return KeyHash(key) & (config_.workers - 1);
  }
  // The masked payload atom implementing the shard split (offset = the
  // envelope's shard byte; mask = workers-1). Exposed for tests that
  // build their own filters against the same key space.
  static dpf::Atom ShardAtom(uint32_t shard, uint32_t workers);

  Supervisor& supervisor() { return *supervisor_; }
  SmpStrideScheduler* stride() { return stride_.get(); }
  const WorkerStats& worker_stats(uint32_t shard) const {
    return workers_[shard]->stats;
  }
  // Live fast-path hit count for a worker: the ASH region's counter word
  // while the incarnation is bound, plus hits snapshotted from previous
  // incarnations.
  uint64_t AshHits(uint32_t shard) const;
  uint64_t TotalAshHits() const;
  bool AllWorkersDone() const;

 private:
  struct WorkerState {
    size_t stride_slot = 0;
    WorkerStats stats;
    hw::PageId ash_page = 0;   // ASH region of the live incarnation.
    bool ash_bound = false;
  };

  // Cross-worker steering state for fail-fast re-steer. Written by the
  // Supervisor's fiber (via ChildSpec::on_state_change) and read by worker
  // fibers; cooperative scheduling makes the accesses race-free.
  struct SteerState {
    std::vector<bool> orphaned;  // Per shard: worker is not running.
    uint32_t orphans = 0;        // Count of true bits above.
    bool rescue_claimed = false; // A live worker holds the catch-all.
    int rescuer = -1;            // Which shard holds it (-1 none).
  };

  void WorkerMain(Process& proc, uint32_t shard);
  // Supervision-state observer: maintains steer_ as shards die/respawn.
  void OnChildState(uint32_t shard, ChildState state);
  // Binds the hot-key ASH for `key`/`value`: pins a region page, builds
  // the reply template + counter in it, and installs the exact-match
  // filter. On success records the region in `ws` for AshHits().
  Status BindHotKeyAsh(Process& proc, WorkerState& ws, uint32_t shard,
                       const std::string& key, const std::string& value);
  uint64_t ReadAshCounter(hw::PageId page) const;

  aegis::Aegis& kernel_;
  KvServerConfig config_;
  SteerState steer_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::unique_ptr<SmpStrideScheduler> stride_;
  std::unique_ptr<Supervisor> supervisor_;  // Last: spawns at Run start.
};

}  // namespace xok::exos::server

#endif  // XOK_SRC_EXOS_SERVER_SERVER_H_
