#include "src/exos/server/httpkv.h"

#include <algorithm>
#include <cstdio>

#include "src/hw/cost.h"
#include "src/net/wire.h"

namespace xok::exos::server {

using hw::Instr;

uint32_t KeyHash(std::string_view key) {
  uint32_t h = 2166136261u;  // FNV-1a.
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

const char* ParseErrorName(ParseError e) {
  switch (e) {
    case ParseError::kOk: return "ok";
    case ParseError::kTruncated: return "truncated";
    case ParseError::kLineTooLong: return "line_too_long";
    case ParseError::kBadMethod: return "bad_method";
    case ParseError::kBadUri: return "bad_uri";
    case ParseError::kEmptyKey: return "empty_key";
    case ParseError::kKeyTooLong: return "key_too_long";
    case ParseError::kBadKeyChar: return "bad_key_char";
    case ParseError::kBadVersion: return "bad_version";
    case ParseError::kHeadersTooBig: return "headers_too_big";
    case ParseError::kBadHeader: return "bad_header";
    case ParseError::kNoContentLength: return "no_content_length";
    case ParseError::kBadContentLength: return "bad_content_length";
    case ParseError::kValueTooLong: return "value_too_long";
    case ParseError::kBodyTruncated: return "body_truncated";
    case ParseError::kNoBlankLine: return "no_blank_line";
  }
  return "unknown";
}

namespace {

bool ValidKeyChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '_' || c == '.' || c == '-';
}

// Finds "\r\n" in text[from..limit); npos-style -1 when absent.
ptrdiff_t FindCrlf(std::string_view text, size_t from, size_t limit) {
  if (limit > text.size()) {
    limit = text.size();
  }
  for (size_t i = from; i + 1 < limit; ++i) {
    if (text[i] == '\r' && text[i + 1] == '\n') {
      return static_cast<ptrdiff_t>(i);
    }
  }
  return -1;
}

}  // namespace

ParseError ParseHttpRequest(std::span<const uint8_t> text, HttpRequest* out) {
  std::string_view s(reinterpret_cast<const char*>(text.data()), text.size());
  const ptrdiff_t line_end = FindCrlf(s, 0, kMaxRequestLine + 2);
  if (line_end < 0) {
    return s.size() > kMaxRequestLine ? ParseError::kLineTooLong : ParseError::kTruncated;
  }
  const std::string_view line = s.substr(0, static_cast<size_t>(line_end));

  // METHOD SP /key SP HTTP/1.0 — single spaces, no tabs.
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return ParseError::kBadMethod;
  }
  const std::string_view method = line.substr(0, sp1);
  for (char c : method) {
    if (c < 'A' || c > 'Z') {
      return ParseError::kBadMethod;  // Non-ASCII-uppercase method bytes.
    }
  }
  Method m;
  if (method == "GET") {
    m = Method::kGet;
  } else if (method == "PUT") {
    m = Method::kPut;
  } else if (method == "QUIT") {
    m = Method::kQuit;
  } else {
    return ParseError::kBadMethod;
  }

  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return ParseError::kBadUri;
  }
  const std::string_view uri = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (uri.empty() || uri[0] != '/') {
    return ParseError::kBadUri;
  }
  const std::string_view key = uri.substr(1);
  if (m != Method::kQuit) {
    if (key.empty()) {
      return ParseError::kEmptyKey;
    }
    if (key.size() > kMaxKeyBytes) {
      return ParseError::kKeyTooLong;
    }
    for (char c : key) {
      if (!ValidKeyChar(c)) {
        return ParseError::kBadKeyChar;
      }
    }
  }
  if (line.substr(sp2 + 1) != "HTTP/1.0") {
    return ParseError::kBadVersion;
  }

  // Header section: lines until the blank line.
  size_t pos = static_cast<size_t>(line_end) + 2;
  const size_t header_limit = pos + kMaxHeaderBytes;
  bool have_clen = false;
  size_t content_length = 0;
  for (;;) {
    if (pos + 1 < s.size() && s[pos] == '\r' && s[pos + 1] == '\n') {
      pos += 2;  // Blank line: headers done.
      break;
    }
    const ptrdiff_t eol = FindCrlf(s, pos, header_limit + 2);
    if (eol < 0) {
      // No terminator within the budget: if the input continues past the
      // header limit the section is oversized; if it simply ran out, the
      // blank line never came.
      return s.size() > header_limit ? ParseError::kHeadersTooBig : ParseError::kNoBlankLine;
    }
    const std::string_view header = s.substr(pos, static_cast<size_t>(eol) - pos);
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      return ParseError::kBadHeader;
    }
    std::string_view name = header.substr(0, colon);
    std::string_view value = header.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') {
      value.remove_prefix(1);
    }
    if (name == "Content-Length") {
      if (value.empty()) {
        return ParseError::kBadContentLength;
      }
      size_t n = 0;
      for (char c : value) {
        if (c < '0' || c > '9' || n > kMaxValueBytes * 16) {
          return ParseError::kBadContentLength;
        }
        n = n * 10 + static_cast<size_t>(c - '0');
      }
      have_clen = true;
      content_length = n;
    }
    pos = static_cast<size_t>(eol) + 2;
  }

  out->method = m;
  out->key = key;
  out->body = {};
  if (m == Method::kPut) {
    if (!have_clen) {
      return ParseError::kNoContentLength;
    }
    if (content_length > kMaxValueBytes) {
      return ParseError::kValueTooLong;
    }
    if (s.size() - pos < content_length) {
      return ParseError::kBodyTruncated;
    }
    out->body = s.substr(pos, content_length);
  }
  return ParseError::kOk;
}

uint64_t ParseCost(size_t bytes) {
  // Tokenising is byte-at-a-time application code.
  return Instr(30 + bytes);
}

uint64_t BuildCost(size_t bytes) {
  // Formatting into a contiguous buffer: cheaper per byte than parsing.
  return Instr(20 + bytes / 2);
}

uint16_t BodySum(std::string_view body) {
  return net::InternetChecksum(
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(body.data()), body.size()));
}

std::string BuildHttpResponse(int status, std::string_view body, uint16_t body_sum,
                              const ResponseOptions& opts) {
  const char* reason = "OK";
  switch (status) {
    case 200: reason = "OK"; break;
    case 201: reason = "Created"; break;
    case 400: reason = "Bad Request"; break;
    case 404: reason = "Not Found"; break;
    case 503: reason = "Service Unavailable"; break;
    default: reason = "Error"; break;
  }
  char head[96];
  std::snprintf(head, sizeof(head),
                "HTTP/1.0 %d %s\r\nContent-Length: %zu\r\nX-Sum: %04x\r\n", status,
                reason, body.size(), body_sum);
  std::string out(head);
  if (opts.retry_after_us > 0) {
    char retry[40];
    std::snprintf(retry, sizeof(retry), "Retry-After: %u\r\n", opts.retry_after_us);
    out.append(retry);
  }
  if (opts.stale) {
    out.append("X-Stale: 1\r\n");
  }
  out.append("\r\n");
  out.append(body);
  return out;
}

std::string BuildGetRequest(std::string_view key) {
  std::string out("GET /");
  out.append(key);
  out.append(" HTTP/1.0\r\n\r\n");
  return out;
}

std::string BuildPutRequest(std::string_view key, std::string_view body) {
  char head[64];
  std::snprintf(head, sizeof(head), " HTTP/1.0\r\nContent-Length: %zu\r\n\r\n", body.size());
  std::string out("PUT /");
  out.append(key);
  out.append(head);
  out.append(body);
  return out;
}

std::string BuildQuitRequest() { return "QUIT / HTTP/1.0\r\n\r\n"; }

std::vector<uint8_t> BuildRequestPayload(uint32_t req_id, std::string_view text,
                                         std::string_view key, int shard_override,
                                         uint64_t deadline_cycle) {
  std::vector<uint8_t> payload(kReqHeaderBytes + text.size());
  payload[0] = shard_override >= 0 ? static_cast<uint8_t>(shard_override) : ShardByte(key);
  net::PutBe32(payload, 1, req_id);
  net::PutBe32(payload, 5, static_cast<uint32_t>(deadline_cycle >> 32));
  net::PutBe32(payload, 9, static_cast<uint32_t>(deadline_cycle & 0xffffffffu));
  std::copy(text.begin(), text.end(), payload.begin() + kReqHeaderBytes);
  return payload;
}

uint64_t RequestDeadline(std::span<const uint8_t> payload) {
  return (static_cast<uint64_t>(net::GetBe32(payload, 5)) << 32) |
         static_cast<uint64_t>(net::GetBe32(payload, 9));
}

bool ParseResponsePayload(std::span<const uint8_t> payload, HttpResponseView* out) {
  if (payload.size() < kRespHeaderBytes) {
    return false;
  }
  out->req_id = net::GetBe32(payload, 0);
  std::string_view s(reinterpret_cast<const char*>(payload.data()) + kRespHeaderBytes,
                     payload.size() - kRespHeaderBytes);
  const ptrdiff_t line_end = FindCrlf(s, 0, s.size());
  if (line_end < 0) {
    return false;
  }
  const std::string_view line = s.substr(0, static_cast<size_t>(line_end));
  if (line.size() < 12 || line.substr(0, 9) != "HTTP/1.0 ") {
    return false;
  }
  int status = 0;
  for (size_t i = 9; i < 12; ++i) {
    if (line[i] < '0' || line[i] > '9') {
      return false;
    }
    status = status * 10 + (line[i] - '0');
  }
  size_t pos = static_cast<size_t>(line_end) + 2;
  size_t content_length = 0;
  bool have_sum = false;
  uint16_t sum = 0;
  bool stale = false;
  uint32_t retry_after_us = 0;
  for (;;) {
    if (pos + 1 < s.size() && s[pos] == '\r' && s[pos + 1] == '\n') {
      pos += 2;
      break;
    }
    const ptrdiff_t eol = FindCrlf(s, pos, s.size());
    if (eol < 0) {
      return false;
    }
    const std::string_view header = s.substr(pos, static_cast<size_t>(eol) - pos);
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos) {
      return false;
    }
    std::string_view name = header.substr(0, colon);
    std::string_view value = header.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') {
      value.remove_prefix(1);
    }
    if (name == "Content-Length") {
      for (char c : value) {
        if (c < '0' || c > '9') {
          return false;
        }
        content_length = content_length * 10 + static_cast<size_t>(c - '0');
      }
    } else if (name == "X-Sum") {
      uint32_t v = 0;
      for (char c : value) {
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a') + 10;
        } else {
          return false;
        }
        v = (v << 4) | digit;
      }
      sum = static_cast<uint16_t>(v);
      have_sum = true;
    } else if (name == "Retry-After") {
      uint32_t v = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return false;
        }
        v = v * 10 + static_cast<uint32_t>(c - '0');
      }
      retry_after_us = v;
    } else if (name == "X-Stale") {
      stale = value == "1";
    }
    pos = static_cast<size_t>(eol) + 2;
  }
  if (s.size() - pos < content_length) {
    return false;
  }
  out->status = status;
  out->body = s.substr(pos, content_length);
  out->sum_ok = have_sum && BodySum(out->body) == sum;
  out->stale = stale;
  out->retry_after_us = retry_after_us;
  return true;
}

// --- KvStore ---

Status KvStore::Put(std::string_view key, std::string_view value) {
  ++stats_.puts;
  if (value.size() > kMaxValueBytes || key.empty() || key.size() > kMaxKeyBytes) {
    ++stats_.errors;
    return Status::kErrOutOfRange;
  }
  proc_.machine().Charge(Instr(40) +  // Hash + cache probe.
                         hw::kMemWordCopy * ((value.size() + 3) / 4));
  const std::string k(key);
  Result<FileHandle> file = fs_->Open(k);
  if (!file.ok()) {
    file = fs_->Create(k);
  }
  if (!file.ok()) {
    ++stats_.errors;
    return file.status();
  }
  // [u16 length][bytes] so a shorter overwrite hides the stale tail.
  std::vector<uint8_t> record(2 + value.size());
  record[0] = static_cast<uint8_t>(value.size() & 0xff);
  record[1] = static_cast<uint8_t>(value.size() >> 8);
  std::copy(value.begin(), value.end(), record.begin() + 2);
  const Status wrote = fs_->Write(*file, 0, record);
  if (wrote != Status::kOk) {
    ++stats_.errors;
    return wrote;
  }
  Entry entry;
  entry.value.assign(value);
  proc_.machine().Charge(Instr((value.size() + 1) / 2));  // Precompute X-Sum.
  entry.sum = BodySum(entry.value);
  CacheInsert(k, std::move(entry));
  return Status::kOk;
}

Result<const KvStore::Entry*> KvStore::Get(std::string_view key) {
  ++stats_.gets;
  proc_.machine().Charge(Instr(40));  // Hash + cache probe.
  const std::string k(key);
  auto it = cache_.find(k);
  if (it != cache_.end()) {
    ++stats_.hits;
    return &it->second;
  }
  ++stats_.misses;
  Entry entry;
  const Status read = ReadThrough(k, &entry);
  if (read != Status::kOk) {
    return read;
  }
  CacheInsert(k, std::move(entry));
  return &cache_.find(k)->second;
}

Result<const KvStore::Entry*> KvStore::GetCached(std::string_view key) {
  ++stats_.gets;
  proc_.machine().Charge(Instr(40));  // Hash + cache probe.
  auto it = cache_.find(std::string(key));
  if (it != cache_.end()) {
    ++stats_.hits;
    return &it->second;
  }
  ++stats_.misses;
  return Status::kErrNotFound;
}

Status KvStore::ReadThrough(std::string_view key, Entry* out) {
  Result<FileHandle> file = fs_->Open(std::string(key));
  if (!file.ok()) {
    return Status::kErrNotFound;
  }
  uint8_t len_bytes[2];
  Result<uint32_t> got = fs_->Read(*file, 0, len_bytes);
  if (!got.ok() || *got < 2) {
    ++stats_.errors;
    return Status::kErrBadState;
  }
  const size_t len = static_cast<size_t>(len_bytes[0]) | (static_cast<size_t>(len_bytes[1]) << 8);
  if (len > kMaxValueBytes) {
    ++stats_.errors;
    return Status::kErrBadState;
  }
  out->value.resize(len);
  got = fs_->Read(*file, 2,
                  std::span<uint8_t>(reinterpret_cast<uint8_t*>(out->value.data()), len));
  if (!got.ok() || *got != len) {
    ++stats_.errors;
    return Status::kErrBadState;
  }
  proc_.machine().Charge(Instr((len + 1) / 2));  // Recompute X-Sum on fill.
  out->sum = BodySum(out->value);
  return Status::kOk;
}

void KvStore::CacheInsert(const std::string& key, Entry entry) {
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second = std::move(entry);
    return;
  }
  while (cache_.size() >= cache_entries_ && !lru_.empty()) {
    cache_.erase(lru_.front());
    lru_.pop_front();
  }
  cache_.emplace(key, std::move(entry));
  lru_.push_back(key);
}

}  // namespace xok::exos::server
