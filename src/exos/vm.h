// ExOS virtual memory: mapping, protection, software dirty bits, and
// user-level trap upcalls — implemented entirely in application space on
// Aegis primitives (paper §6.2). This is the machinery under the Appel–Li
// benchmarks (Table 10): trap, prot1/prot100, unprot100, dirty, appel1/2.
#ifndef XOK_SRC_EXOS_VM_H_
#define XOK_SRC_EXOS_VM_H_

#include <cstdint>
#include <functional>

#include "src/base/result.h"
#include "src/core/aegis.h"
#include "src/exos/inverted_page_table.h"
#include "src/exos/page_table.h"

namespace xok::exos {

// Which page-table structure this address space uses — an application
// choice (paper §7: page-table structures are libOS code, not kernel
// policy). kTwoLevel is the dense/linear classic; kInverted sizes its
// space by physical frames and wins for sparse address spaces.
enum class PageTableKind : uint8_t { kTwoLevel, kInverted };

class Vm {
 public:
  // The user-level fault handler (the "trap" the Appel–Li suite measures):
  // called for accesses the application has protected. Returns true if it
  // repaired the fault (typically via Protect/Unprotect) and the access
  // should retry.
  using TrapHandler = std::function<bool(hw::Vaddr va, bool is_write)>;

  explicit Vm(aegis::Aegis& kernel, PageTableKind kind = PageTableKind::kTwoLevel)
      : kernel_(kernel), kind_(kind) {
    if (kind_ == PageTableKind::kInverted) {
      inverted_ = std::make_unique<InvertedPageTable>(kernel.machine().mem().page_count());
    }
  }

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // Demand-zero on unmapped faults (on by default: gives processes a heap
  // without explicit Map calls).
  void set_demand_zero(bool on) { demand_zero_ = on; }
  void set_trap_handler(TrapHandler handler) { trap_handler_ = std::move(handler); }

  // Eagerly binds a frame at `va` with `prot`. Called from the owning env.
  Status Map(hw::Vaddr va, Prot prot);

  // Binds an *existing* frame (e.g. a page shared by another process,
  // reached via a derived capability) at `va`. The PTE is marked dirty so
  // stores never trap for dirty tracking — shared-buffer semantics.
  Status MapExternal(hw::Vaddr va, hw::PageId frame, const cap::Capability& frame_cap,
                     Prot prot);
  // Releases the frame at `va` back to the kernel.
  Status Unmap(hw::Vaddr va);

  // Changes protection on `pages` pages starting at `va`. Pure
  // application-level state change plus one TLB invalidate per page.
  Status Protect(hw::Vaddr va, uint32_t pages, Prot prot);

  // Software dirty query: two indexed loads into our own page table — no
  // kernel involvement at all (Table 10 "dirty").
  Result<bool> Dirty(hw::Vaddr va);
  // Clears the dirty bit and re-arms the first-store trap.
  Status Clean(hw::Vaddr va);

  // The environment's exception context for memory faults. Returns kRetry
  // if the fault was satisfied (mapping installed / handler repaired it).
  aegis::ExcAction HandleException(const hw::TrapFrame& frame);

  // Tears down every mapping, returning frames to the kernel.
  void ReleaseAll();

  // Releases up to `n` mapped pages back to the kernel, preferring clean
  // pages (cheap victims — nothing to write back). Returns how many were
  // released. This is the default visible-revocation policy.
  uint32_t ReleasePages(uint32_t n);

  // Repairs the page table after an abort-protocol repossession: any PTE
  // whose frame was taken is marked not-present (the libOS sees exactly
  // which abstractions broke).
  void RepairAfterRepossession(std::span<const hw::PageId> taken);

  uint64_t user_traps() const { return user_traps_; }
  PageTableKind page_table_kind() const { return kind_; }
  // Bytes of page-table structure currently held (the §7.2-style space
  // comparison between structures).
  size_t table_footprint_bytes() const;

 private:
  // Installs the hardware mapping for a present, accessible PTE. Clean
  // pages map read-only so the first store faults and sets the dirty bit.
  Status InstallMapping(hw::Vaddr va, Pte& pte);

  // Structure dispatch: the rest of the VM is table-agnostic.
  Pte* TableLookup(hw::Vpn vpn);
  Pte& TableLookupOrCreate(hw::Vpn vpn);
  template <typename Fn>
  void TableForEachPresent(Fn&& fn) {
    if (kind_ == PageTableKind::kInverted) {
      inverted_->ForEachPresent(fn);
    } else {
      table_.ForEachPresent(fn);
    }
  }

  aegis::Aegis& kernel_;
  PageTableKind kind_ = PageTableKind::kTwoLevel;
  PageTable table_;
  std::unique_ptr<InvertedPageTable> inverted_;
  TrapHandler trap_handler_;
  bool demand_zero_ = true;
  uint64_t user_traps_ = 0;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_VM_H_
