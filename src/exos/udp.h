// ExOS remote communication: UDP sockets in application space (paper §6.3).
//
// The whole protocol stack is library code: header construction, Internet
// checksums, and demultiplexing policy (which packets to claim) are chosen
// by the application; Aegis contributes only the secure filter binding and
// raw frame transmission. Three receive paths exist:
//   * the ordinary path — packets queue in a kernel buffer, the process is
//     woken, and it copies the frame out when scheduled;
//   * the ring path (BindRing below) — the demux deposits matched frames
//     straight into a shared-memory RX ring the socket owns; Recv parses
//     them in place (no receive syscall, no kernel-to-user frame copy) and
//     SendTo/QueueTo build frames directly in TX-ring slots, draining a
//     whole batch with one SysTxRing doorbell;
//   * the ASH path (BindEchoAsh below / exos tests) — a downloaded handler
//     vectors or answers the message at interrupt time.
#ifndef XOK_SRC_EXOS_UDP_H_
#define XOK_SRC_EXOS_UDP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/dpf/tcpip_filters.h"
#include "src/exos/process.h"
#include "src/net/pktring.h"
#include "src/net/wire.h"

namespace xok::exos {

// Static interface configuration (no ARP in 1995's experiments either:
// the paper ping-pongs between two fixed stations).
struct NetIface {
  uint64_t mac = 0;
  uint32_t ip = 0;
  // Resolver from destination IP to MAC (static table in practice).
  std::function<uint64_t(uint32_t ip)> resolve;
};

struct Datagram {
  uint32_t src_ip = 0;
  uint16_t src_port = 0;
  std::vector<uint8_t> payload;
};

// Ring-mode geometry for BindRing.
struct RingConfig {
  uint32_t rx_slots = 32;
  uint32_t tx_slots = 16;
  bool batch_doorbells = true;
  // Library shed policy handed to the kernel at bind time: RX occupancy at
  // or above this sheds frames at the demux for a few cycles each (see
  // aegis::PacketRingSpec). 0 disarms. Survives repair rebinds — the
  // policy is part of the socket's geometry.
  uint32_t shed_watermark = 0;
};

class UdpSocket {
 public:
  UdpSocket(Process& proc, NetIface iface) : proc_(proc), iface_(std::move(iface)) {}

  // Claims UDP packets to `port` via a filter binding (kernel-queue path).
  // `extra` atoms refine the claim beyond the port — e.g. the server libOS
  // appends a masked payload-byte atom so each worker's socket claims only
  // its shard of the key space (software RSS, expressed in the filter
  // language so DPF's most-specific-wins policy routes around a shallower
  // catch-all). The refined filter is re-applied by repair rebinds.
  Status Bind(uint16_t port, std::vector<dpf::Atom> extra = {});
  // Bind + zero-copy rings: allocates a contiguous run of pages, formats
  // the ring pair in them, and registers it with the kernel. Matched
  // frames then bypass the kernel queue entirely.
  Status BindRing(uint16_t port, const RingConfig& config = {},
                  std::vector<dpf::Atom> extra = {});
  Status Close();

  // Builds the frame (headers + checksums are application code, charged as
  // such) and hands it to the kernel for transmission. On a ring socket
  // the frame is assembled in a TX slot and the doorbell rung immediately.
  Status SendTo(uint32_t dst_ip, uint16_t dst_port, std::span<const uint8_t> payload);
  // Ring sockets only: queue without ringing the doorbell. A batch of
  // QueueTo calls followed by one FlushTx costs one kernel crossing total.
  Status QueueTo(uint32_t dst_ip, uint16_t dst_port, std::span<const uint8_t> payload);
  // Transmits everything queued in the TX ring; returns the frame count.
  Result<uint32_t> FlushTx();

  // Receives the next datagram. Blocking: sleeps until the filter binding
  // wakes us. Non-blocking: returns kErrWouldBlock when empty.
  Result<Datagram> Recv(bool blocking = true);

  uint16_t port() const { return port_; }
  bool ring_bound() const { return ring_.has_value(); }
  std::optional<dpf::FilterId> filter_id() const { return binding_; }

  // Programs the kDpfMatch correlation tag (FilterBindSpec::trace_tag_off):
  // the demux will copy 4 big-endian frame bytes at `frame_off` into arg3
  // of this socket's match records, which is how the request tracer joins
  // demux timestamps to app request ids. Call before Bind/BindRing; the
  // offset is part of the socket's geometry and survives repair rebinds.
  void set_trace_tag_off(uint32_t frame_off) { trace_tag_off_ = frame_off; }

  // Post-revocation repair: rebinds whatever the kernel reclaimed. A
  // reclaimed filter (SysPacketStats reports the binding gone) or a
  // severed ring (a region page repossessed) triggers a full rebind with
  // the original geometry; when no contiguous page run is available the
  // socket falls back to the legacy kernel-queue path, which needs no
  // pages at all. Frames queued at the moment of repair are dropped —
  // UDP. `taken` is the vector from SysReadRepossessed.
  Status RepairAfterRepossession(std::span<const hw::PageId> taken);
  uint64_t repairs() const { return repairs_; }
  // True while the socket runs on the legacy queue because a ring rebind
  // failed; the next successful repair clears it.
  bool legacy_fallback() const { return legacy_fallback_; }

 private:
  // Parses the ring's front frame into a datagram (drops malformed ones).
  Result<Datagram> PopRingFrame();

  Process& proc_;
  NetIface iface_;
  uint16_t port_ = 0;
  std::optional<dpf::FilterId> binding_;
  std::optional<net::PacketRingView> ring_;
  std::vector<aegis::PageGrant> ring_pages_;  // Contiguous run backing the rings.
  RingConfig ring_config_;   // Geometry to rebuild with after a repair.
  std::vector<dpf::Atom> extra_atoms_;  // Filter refinement beyond the port.
  uint32_t trace_tag_off_ = 0;  // kDpfMatch arg3 tag offset (0 = untagged).
  bool want_ring_ = false;   // Socket was bound in ring mode.
  uint32_t ring_pops_since_check_ = 0;  // Liveness-audit cadence (see Recv).
  uint64_t repairs_ = 0;
  bool legacy_fallback_ = false;
};

// Binds an echo-reply ASH for UDP `port`: requests arriving at `port` are
// answered entirely at interrupt level with a counter-incremented copy of
// the prebuilt reply frame (the paper's Table 11 ASH workload). Returns
// the filter id; the region is allocated inside `proc`'s environment.
struct AshEchoConfig {
  NetIface iface;
  uint16_t port = 0;
  uint32_t peer_ip = 0;
  uint16_t peer_port = 0;
};
Result<dpf::FilterId> BindEchoAsh(Process& proc, const AshEchoConfig& config);

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_UDP_H_
