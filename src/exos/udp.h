// ExOS remote communication: UDP sockets in application space (paper §6.3).
//
// The whole protocol stack is library code: header construction, Internet
// checksums, and demultiplexing policy (which packets to claim) are chosen
// by the application; Aegis contributes only the secure filter binding and
// raw frame transmission. Two receive paths exist:
//   * the ordinary path — packets queue in a kernel buffer, the process is
//     woken, and it copies the frame out when scheduled;
//   * the ASH path (BindEchoAsh below / exos tests) — a downloaded handler
//     vectors or answers the message at interrupt time.
#ifndef XOK_SRC_EXOS_UDP_H_
#define XOK_SRC_EXOS_UDP_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/dpf/tcpip_filters.h"
#include "src/exos/process.h"
#include "src/net/wire.h"

namespace xok::exos {

// Static interface configuration (no ARP in 1995's experiments either:
// the paper ping-pongs between two fixed stations).
struct NetIface {
  uint64_t mac = 0;
  uint32_t ip = 0;
  // Resolver from destination IP to MAC (static table in practice).
  std::function<uint64_t(uint32_t ip)> resolve;
};

struct Datagram {
  uint32_t src_ip = 0;
  uint16_t src_port = 0;
  std::vector<uint8_t> payload;
};

class UdpSocket {
 public:
  UdpSocket(Process& proc, NetIface iface) : proc_(proc), iface_(std::move(iface)) {}

  // Claims UDP packets to `port` via a filter binding (kernel-queue path).
  Status Bind(uint16_t port);
  Status Close();

  // Builds the frame (headers + checksums are application code, charged as
  // such) and hands it to the kernel for transmission.
  Status SendTo(uint32_t dst_ip, uint16_t dst_port, std::span<const uint8_t> payload);

  // Receives the next datagram. Blocking: sleeps until the filter binding
  // wakes us. Non-blocking: returns kErrWouldBlock when empty.
  Result<Datagram> Recv(bool blocking = true);

  uint16_t port() const { return port_; }

 private:
  Process& proc_;
  NetIface iface_;
  uint16_t port_ = 0;
  std::optional<dpf::FilterId> binding_;
};

// Binds an echo-reply ASH for UDP `port`: requests arriving at `port` are
// answered entirely at interrupt level with a counter-incremented copy of
// the prebuilt reply frame (the paper's Table 11 ASH workload). Returns
// the filter id; the region is allocated inside `proc`'s environment.
struct AshEchoConfig {
  NetIface iface;
  uint16_t port = 0;
  uint32_t peer_ip = 0;
  uint16_t peer_port = 0;
};
Result<dpf::FilterId> BindEchoAsh(Process& proc, const AshEchoConfig& config);

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_UDP_H_
