// A malloc-style heap for ExOS processes — ordinary library-OS machinery
// (the paper's point being precisely that machinery like this *is*
// ordinary application code on an exokernel). The allocator's metadata
// lives inside the simulated heap itself (headers in demand-paged memory,
// accessed through translated loads/stores), so allocation cost is real:
// the first touch of a fresh region takes the ExOS demand-zero fault path.
//
// Layout: an implicit list of blocks starting at `base`. Every block is
//   [size word][status word][payload ...]
// where `size` includes the 8-byte header and `status` is 1 = in use,
// 0 = free. Allocation is first-fit with splitting; Free() coalesces with
// the following block. O(blocks), simple, and easy to verify.
#ifndef XOK_SRC_EXOS_HEAP_H_
#define XOK_SRC_EXOS_HEAP_H_

#include <cstdint>

#include "src/exos/process.h"

namespace xok::exos {

class Heap {
 public:
  // Manages [base, base + capacity_bytes). The region must be unused
  // address space; pages fault in lazily as blocks are touched.
  Heap(Process& proc, hw::Vaddr base, uint32_t capacity_bytes);

  // Allocates `bytes` (rounded up to 4-byte granularity). Returns the
  // payload address.
  Result<hw::Vaddr> Alloc(uint32_t bytes);

  // Frees a pointer previously returned by Alloc. Detects (and rejects)
  // addresses that are not live payload starts.
  Status Free(hw::Vaddr ptr);

  uint32_t bytes_in_use() const { return bytes_in_use_; }
  uint32_t live_allocs() const { return live_allocs_; }

  // Walks the block list checking structural invariants (sizes chain to
  // exactly the capacity, statuses are 0/1). For tests.
  bool CheckConsistency();

 private:
  static constexpr uint32_t kHeaderBytes = 8;
  static constexpr uint32_t kMinPayload = 4;

  uint32_t LoadWord(hw::Vaddr va);
  void StoreWord(hw::Vaddr va, uint32_t value);

  Process& proc_;
  hw::Vaddr base_;
  uint32_t capacity_;
  uint32_t bytes_in_use_ = 0;
  uint32_t live_allocs_ = 0;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_HEAP_H_
