#include "src/exos/ipc.h"

namespace xok::exos {

using aegis::PctArgs;
using hw::Instr;

namespace {
// The compatibility tax of a POSIX-style pipe layer: fd lookup, argument
// validation, SIGPIPE state, errno plumbing — per operation.
constexpr uint64_t kPosixPipeLayer = Instr(60);
// Native ring bookkeeping beyond the raw loads/stores.
constexpr uint64_t kRingOverhead = Instr(8);
// lrpc stubs save/restore the 9 MIPS callee-saved registers plus frame
// setup on both sides; tlrpc trusts the server instead (paper §7.1).
constexpr uint64_t kLrpcClientStub = Instr(14);
constexpr uint64_t kLrpcServerStub = Instr(13);
constexpr uint64_t kTlrpcStub = Instr(2);
}  // namespace

Result<SharedBufferDesc> CreateSharedBuffer(Process& owner) {
  Result<aegis::PageGrant> grant = owner.kernel().SysAllocPage();
  if (!grant.ok()) {
    return grant.status();
  }
  return SharedBufferDesc{grant->page, grant->cap};
}

Status MapSharedBuffer(Process& self, const SharedBufferDesc& desc, hw::Vaddr va) {
  return self.vm().MapExternal(va, desc.frame, desc.cap, kProtWrite);
}

// --- PipeEndpoint ---

PipeEndpoint::PipeEndpoint(Process& self, hw::Vaddr ring_va, PipePeer peer, bool posix_emulation)
    : self_(self), base_(ring_va), peer_(peer), posix_emulation_(posix_emulation) {}

uint32_t PipeEndpoint::Load(uint32_t off) {
  Result<uint32_t> value = self_.machine().LoadWord(base_ + off);
  return value.ok() ? *value : 0;
}

void PipeEndpoint::Store(uint32_t off, uint32_t value) {
  (void)self_.machine().StoreWord(base_ + off, value);
}

bool PipeEndpoint::PeerAlive() { return self_.kernel().SysEnvAlive(peer_.env); }

void PipeEndpoint::WakePeerIfWaiting(uint32_t wait_flag_off) {
  if (Load(wait_flag_off) != 0) {
    Store(wait_flag_off, 0);
    (void)self_.kernel().SysWake(peer_.env, peer_.env_cap);
  }
}

void PipeEndpoint::WaitAsReader() {
  // First try donating the slice to the producer; if the ring is still
  // empty after one directed yield, sleep until woken.
  self_.kernel().SysYield(peer_.env);
  if (Load(kTailOff) != Load(kHeadOff)) {
    return;
  }
  Store(kReaderWaitOff, 1);
  if (Load(kTailOff) != Load(kHeadOff)) {  // Re-check before sleeping.
    Store(kReaderWaitOff, 0);
    return;
  }
  self_.kernel().SysBlock();
}

void PipeEndpoint::WaitAsWriter() {
  self_.kernel().SysYield(peer_.env);
  const uint32_t head = Load(kHeadOff);
  const uint32_t tail = Load(kTailOff);
  if ((tail + 1) % kSlots != head) {
    return;
  }
  Store(kWriterWaitOff, 1);
  if ((Load(kTailOff) + 1) % kSlots != Load(kHeadOff)) {
    Store(kWriterWaitOff, 0);
    return;
  }
  self_.kernel().SysBlock();
}

Status PipeEndpoint::WriteWord(uint32_t value) {
  self_.machine().Charge(posix_emulation_ ? kPosixPipeLayer : kRingOverhead);
  for (;;) {
    const uint32_t head = Load(kHeadOff);
    const uint32_t tail = Load(kTailOff);
    if ((tail + 1) % kSlots == head) {
      // The liveness probe charges cycles and may lose the slice, so the
      // EPIPE conclusion must come from ring state re-read afterwards.
      const bool peer_alive = PeerAlive();
      if ((Load(kTailOff) + 1) % kSlots == Load(kHeadOff)) {
        if (!peer_alive) {
          return Status::kErrBadState;  // EPIPE: no reader will ever drain.
        }
        WaitAsWriter();
      }
      continue;
    }
    Store(kDataOff + tail * 4, value);
    Store(kTailOff, (tail + 1) % kSlots);
    WakePeerIfWaiting(kReaderWaitOff);
    return Status::kOk;
  }
}

Result<uint32_t> PipeEndpoint::ReadWord() {
  self_.machine().Charge(posix_emulation_ ? kPosixPipeLayer : kRingOverhead);
  for (;;) {
    const uint32_t head = Load(kHeadOff);
    const uint32_t tail = Load(kTailOff);
    if (head == tail) {
      // Same staleness hazard as in WriteWord: re-read before concluding.
      const bool peer_alive = PeerAlive();
      if (Load(kHeadOff) == Load(kTailOff)) {
        if (!peer_alive) {
          return Status::kErrBadState;  // Writer died; the ring stays empty.
        }
        WaitAsReader();
      }
      continue;
    }
    const uint32_t value = Load(kDataOff + head * 4);
    Store(kHeadOff, (head + 1) % kSlots);
    WakePeerIfWaiting(kWriterWaitOff);
    return value;
  }
}

Status PipeEndpoint::WriteMessage(std::span<const uint8_t> bytes) {
  Status status = WriteWord(static_cast<uint32_t>(bytes.size()));
  if (status != Status::kOk) {
    return status;
  }
  for (size_t i = 0; i < bytes.size(); i += 4) {
    uint32_t word = 0;
    for (size_t j = 0; j < 4 && i + j < bytes.size(); ++j) {
      word |= static_cast<uint32_t>(bytes[i + j]) << (8 * j);
    }
    status = WriteWord(word);
    if (status != Status::kOk) {
      return status;
    }
  }
  return Status::kOk;
}

Result<uint32_t> PipeEndpoint::ReadMessage(std::span<uint8_t> bytes) {
  Result<uint32_t> len = ReadWord();
  if (!len.ok()) {
    return len;
  }
  if (*len > bytes.size()) {
    return Status::kErrOutOfRange;
  }
  for (uint32_t i = 0; i < *len; i += 4) {
    Result<uint32_t> word = ReadWord();
    if (!word.ok()) {
      return word;
    }
    for (uint32_t j = 0; j < 4 && i + j < *len; ++j) {
      bytes[i + j] = static_cast<uint8_t>(*word >> (8 * j));
    }
  }
  return *len;
}

// --- LRPC ---

void InstallLrpcServer(Process& server, std::function<PctArgs(const PctArgs&)> fn) {
  Process* proc = &server;
  server.set_pct_server([proc, fn = std::move(fn)](const PctArgs& args) {
    proc->machine().Charge(kLrpcServerStub);
    PctArgs reply = fn(args);
    proc->machine().Charge(kLrpcServerStub);
    return reply;
  });
}

void InstallTlrpcServer(Process& server, std::function<PctArgs(const PctArgs&)> fn) {
  Process* proc = &server;
  server.set_pct_server([proc, fn = std::move(fn)](const PctArgs& args) {
    proc->machine().Charge(kTlrpcStub);
    return fn(args);
  });
}

Result<PctArgs> LrpcCall(Process& client, aegis::EnvId server, const PctArgs& args) {
  client.machine().Charge(kLrpcClientStub);
  Result<PctArgs> reply = client.kernel().SysPctCall(server, args);
  client.machine().Charge(kLrpcClientStub);
  return reply;
}

Result<PctArgs> TlrpcCall(Process& client, aegis::EnvId server, const PctArgs& args) {
  client.machine().Charge(kTlrpcStub);
  Result<PctArgs> reply = client.kernel().SysPctCall(server, args);
  client.machine().Charge(kTlrpcStub);
  return reply;
}

}  // namespace xok::exos
