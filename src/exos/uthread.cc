#include "src/exos/uthread.h"

#include <cstdio>
#include <cstdlib>

namespace xok::exos {

using hw::Instr;

ThreadGroup::ThreadGroup(Process& proc) : proc_(proc) {
  // The exokernel exposes the timer interrupt; our epilogue turns it into
  // a preemption hint for the thread scheduler (on top of the usual
  // context save the slice end requires). It runs at interrupt level, so
  // it only sets a flag — the actual thread switch happens at the next
  // safe point (Yield).
  proc_.set_timer_epilogue([this] {
    proc_.machine().Charge(Instr(30));  // Save the interrupted context.
    preempt_hint_ = true;
  });
}

ThreadGroup::ThreadId ThreadGroup::Spawn(std::function<void()> body) {
  const ThreadId id = static_cast<ThreadId>(threads_.size());
  auto thread = std::make_unique<Thread>();
  thread->id = id;
  Thread* raw = thread.get();
  thread->fiber = std::make_unique<hw::Fiber>([this, raw, body = std::move(body)]() {
    body();
    raw->finished = true;
    // Wake a joiner, if any.
    if (raw->joined_by != kNoThread) {
      Thread& joiner = *threads_[raw->joined_by];
      if (joiner.blocked) {
        joiner.blocked = false;
        run_queue_.push_back(joiner.id);
      }
    }
    SwitchToScheduler();
    std::fprintf(stderr, "uthread: finished thread resumed\n");
    std::abort();
  });
  threads_.push_back(std::move(thread));
  run_queue_.push_back(id);
  proc_.machine().Charge(Instr(20));  // Stack + TCB setup.
  return id;
}

void ThreadGroup::Run() {
  while (!run_queue_.empty()) {
    const ThreadId next = run_queue_.front();
    run_queue_.pop_front();
    Thread& thread = *threads_[next];
    if (thread.finished || thread.blocked) {
      continue;
    }
    current_ = next;
    proc_.machine().Charge(Instr(4));  // User-level dispatch: cheap.
    hw::Fiber::Switch(scheduler_fiber_, *thread.fiber);
    current_ = kNoThread;
  }
  // All threads finished or blocked; blocked threads with no finisher
  // would be a deadlock — surface it.
  for (const auto& thread : threads_) {
    if (!thread->finished && thread->blocked) {
      std::fprintf(stderr, "uthread: deadlock — thread %u blocked forever\n", thread->id);
      std::abort();
    }
  }
}

void ThreadGroup::SwitchToScheduler() {
  Thread& thread = *threads_[current_];
  hw::Fiber::Switch(*thread.fiber, scheduler_fiber_);
}

void ThreadGroup::Yield() {
  proc_.machine().Charge(Instr(6));  // User-level context switch cost.
  if (current_ == kNoThread) {
    return;
  }
  if (preempt_hint_) {
    preempt_hint_ = false;
    ++preemptions_;
  }
  run_queue_.push_back(current_);
  SwitchToScheduler();
}

void ThreadGroup::Join(ThreadId target) {
  if (current_ == kNoThread || target >= threads_.size() || target == current_) {
    return;
  }
  Thread& joinee = *threads_[target];
  if (joinee.finished) {
    return;
  }
  joinee.joined_by = current_;
  threads_[current_]->blocked = true;
  SwitchToScheduler();
}

}  // namespace xok::exos
