#include "src/exos/tracelib.h"

#include <algorithm>

namespace xok::exos {

Status TraceSession::Bind(const TraceConfig& config) {
  if (view_.has_value()) {
    return Status::kErrBadState;
  }
  if (config.pages == 0) {
    return Status::kErrInvalidArgs;
  }
  aegis::Aegis& kernel = proc_.kernel();
  // Hunt for a contiguous run of free frames (cf. UdpSocket::BindRing:
  // physical names are exposed so applications make placement decisions).
  const uint32_t page_count = proc_.machine().mem().page_count();
  for (hw::PageId start = 0; start + config.pages <= page_count && pages_.empty();) {
    std::vector<aegis::PageGrant> run;
    hw::PageId next_start = start + config.pages;
    for (uint32_t i = 0; i < config.pages; ++i) {
      Result<aegis::PageGrant> grant = kernel.SysAllocPage(start + i);
      if (!grant.ok()) {
        next_start = start + i + 1;
        break;
      }
      run.push_back(*grant);
    }
    if (run.size() == config.pages) {
      pages_ = std::move(run);
      break;
    }
    for (const aegis::PageGrant& grant : run) {
      (void)kernel.SysDeallocPage(grant.page, grant.cap);
    }
    start = next_start;
  }
  if (pages_.empty()) {
    return Status::kErrNoResources;
  }
  aegis::TraceRingSpec spec;
  spec.first_page = pages_.front().page;
  spec.pages = config.pages;
  spec.mask = config.mask;
  const Status bound = kernel.SysBindTraceRing(spec, pages_.front().cap);
  if (bound != Status::kOk) {
    for (const aegis::PageGrant& grant : pages_) {
      (void)kernel.SysDeallocPage(grant.page, grant.cap);
    }
    pages_.clear();
    return bound;
  }
  std::span<uint8_t> region = proc_.machine().mem().RangeSpan(spec.first_page, spec.pages);
  view_ = *xtrace::TraceRingView::AttachExisting(region);
  config_ = config;
  tail_ = 0;
  lapped_ = 0;
  return Status::kOk;
}

Status TraceSession::RepairAfterRepossession(std::span<const hw::PageId> taken) {
  if (!view_.has_value()) {
    return Status::kOk;
  }
  bool severed = false;
  for (const aegis::PageGrant& grant : pages_) {
    if (std::find(taken.begin(), taken.end(), grant.page) != taken.end()) {
      severed = true;
      break;
    }
  }
  if (!severed) {
    return Status::kOk;
  }
  ++repairs_;
  view_.reset();
  // Surviving pages still belong to us; the repossessed ones' capabilities
  // are void (epoch bump), so skip them rather than collect denials.
  for (const aegis::PageGrant& grant : pages_) {
    if (std::find(taken.begin(), taken.end(), grant.page) == taken.end()) {
      (void)proc_.kernel().SysDeallocPage(grant.page, grant.cap);
    }
  }
  pages_.clear();
  const TraceConfig config = config_;
  return Bind(config);
}

Status TraceSession::Close() {
  if (!view_.has_value()) {
    return Status::kErrBadState;
  }
  const Status status = proc_.kernel().SysUnbindTraceRing();
  view_.reset();
  for (const aegis::PageGrant& grant : pages_) {
    (void)proc_.kernel().SysDeallocPage(grant.page, grant.cap);
  }
  pages_.clear();
  return status;
}

Result<xtrace::Record> TraceSession::Next() {
  if (!view_.has_value()) {
    return Status::kErrBadState;
  }
  const uint32_t head = view_->head();
  if (tail_ == head) {
    return Status::kErrWouldBlock;
  }
  if (head - tail_ > view_->slots()) {
    // The producer lapped us: everything between our cursor and the oldest
    // retained record was overwritten. Jump forward and account the loss.
    const uint32_t oldest = head - view_->slots();
    lapped_ += oldest - tail_;
    tail_ = oldest;
  }
  const xtrace::Record record = view_->Read(tail_);
  ++tail_;
  view_->set_tail(tail_);
  return record;
}

uint32_t TraceSession::Drain(std::vector<xtrace::Record>& out) {
  uint32_t read = 0;
  while (true) {
    Result<xtrace::Record> record = Next();
    if (!record.ok()) {
      break;
    }
    out.push_back(*record);
    ++read;
  }
  return read;
}

uint64_t TraceSession::dropped() const {
  return view_.has_value() ? view_->dropped() : 0;
}

void TraceSummary::Add(const xtrace::Record& record) {
  if (records == 0 || record.cycle < first_cycle) {
    first_cycle = record.cycle;
  }
  if (record.cycle > last_cycle) {
    last_cycle = record.cycle;
  }
  ++records;
  if (record.type < xtrace::kEventCount) {
    ++by_type[record.type];
  }
  if (record.type == static_cast<uint16_t>(xtrace::Event::kSyscallEnter) &&
      record.arg0 < xtrace::kSysCount) {
    ++syscall_enters[record.arg0];
  }
}

TraceSummary Summarize(const std::vector<xtrace::Record>& records) {
  TraceSummary summary;
  for (const xtrace::Record& record : records) {
    summary.Add(record);
  }
  return summary;
}

std::string SummaryToJson(const TraceSummary& summary) {
  std::string json = "{";
  json += "\"records\": " + std::to_string(summary.records);
  json += ", \"dropped\": " + std::to_string(summary.dropped);
  json += ", \"first_cycle\": " + std::to_string(summary.first_cycle);
  json += ", \"last_cycle\": " + std::to_string(summary.last_cycle);
  json += ", \"events\": {";
  bool first = true;
  for (uint32_t i = 0; i < xtrace::kEventCount; ++i) {
    if (summary.by_type[i] == 0) {
      continue;
    }
    if (!first) {
      json += ", ";
    }
    first = false;
    json += std::string("\"") + xtrace::EventName(static_cast<xtrace::Event>(i)) +
            "\": " + std::to_string(summary.by_type[i]);
  }
  json += "}, \"syscalls\": {";
  first = true;
  for (uint32_t i = 0; i < xtrace::kSysCount; ++i) {
    if (summary.syscall_enters[i] == 0) {
      continue;
    }
    if (!first) {
      json += ", ";
    }
    first = false;
    json += std::string("\"") + xtrace::SysName(static_cast<xtrace::Sys>(i)) +
            "\": " + std::to_string(summary.syscall_enters[i]);
  }
  json += "}}";
  return json;
}

Result<std::vector<xtrace::Record>> DecodeRegion(std::span<uint8_t> region) {
  Result<xtrace::TraceRingView> view = xtrace::TraceRingView::AttachExisting(region);
  if (!view.ok()) {
    return view.status();
  }
  const uint32_t head = view->head();
  const uint32_t slots = view->slots();
  const uint32_t retained = head < slots ? head : slots;
  std::vector<xtrace::Record> records;
  records.reserve(retained);
  for (uint32_t index = head - retained; index != head; ++index) {
    records.push_back(view->Read(index));
  }
  return records;
}

}  // namespace xok::exos
