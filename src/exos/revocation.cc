#include "src/exos/revocation.h"

#include <vector>

namespace xok::exos {

RevocationClient::RevocationClient(Process& proc, Options options)
    : proc_(proc), options_(options) {
  proc_.set_revoke_handler([this](uint32_t pages) { OnRevoke(pages); });
}

void RevocationClient::OnRevoke(uint32_t pages) {
  ++stats_.revocations_seen;
  uint32_t remaining = pages;
  // Cheapest victims first: invalid/clean block-cache frames need no
  // write-back, and nothing here may block — this can run at interrupt
  // level on an arbitrary fiber.
  if (options_.fs != nullptr && remaining > 0) {
    const uint32_t released = options_.fs->cache().ReleaseCleanFrames(remaining);
    stats_.cache_frames_released += released;
    remaining -= released;
    if (options_.fs->cache().dirty_remaining() > 0) {
      flush_wanted_ = true;  // Victim-save: Poll flushes on our own fiber.
    }
  }
  // Then clean VM pages (Vm::ReleasePages prefers them).
  if (remaining > 0) {
    stats_.pages_released += proc_.vm().ReleasePages(remaining);
  }
}

Status RevocationClient::Poll() {
  ++stats_.polls;
  Status first_error = Status::kOk;
  const auto note = [&first_error](Status status) {
    if (status != Status::kOk && first_error == Status::kOk) {
      first_error = status;
    }
  };

  // Drain the repossession vector and let every subsystem inspect what
  // the abort protocol took.
  const std::vector<hw::PageId> taken = proc_.kernel().SysReadRepossessed();
  if (!taken.empty()) {
    stats_.pages_repossessed += taken.size();
    proc_.vm().RepairAfterRepossession(taken);
    if (options_.fs != nullptr) {
      stats_.fs_repairs += options_.fs->RepairAfterRepossession(taken);
    }
    if (options_.trace != nullptr) {
      const uint64_t before = options_.trace->repairs();
      note(options_.trace->RepairAfterRepossession(taken));
      stats_.trace_repairs += options_.trace->repairs() - before;
    }
  }
  // The socket can also break with no repossession at all (filter reclaim
  // severs the binding without touching a page), so probe it every poll.
  if (options_.socket != nullptr) {
    const uint64_t before = options_.socket->repairs();
    note(options_.socket->RepairAfterRepossession(taken));
    stats_.socket_repairs += options_.socket->repairs() - before;
  }

  // Victim-save flush: make the dirty set clean so the next revocation
  // finds frames it can take without losing data.
  if (flush_wanted_ && options_.fs != nullptr) {
    flush_wanted_ = false;
    ++stats_.fs_flushes;
    note(options_.fs->cache().Flush());
  }

  // Slice re-admission: after slice revocation, grow back toward the
  // desired footprint (stride-scheduler tickets, thread-group CPUs).
  if (options_.desired_slices > 0) {
    Result<aegis::EnvStats> stats = proc_.kernel().SysEnvStats(proc_.id());
    if (stats.ok()) {
      uint32_t held = stats->slice_slots;
      while (held < options_.desired_slices &&
             proc_.kernel().SysAllocSlice() == Status::kOk) {
        ++held;
        ++stats_.slices_readmitted;
      }
    }
  }
  return first_error;
}

}  // namespace xok::exos
