#include "src/exos/heap.h"

namespace xok::exos {

using hw::Instr;

Heap::Heap(Process& proc, hw::Vaddr base, uint32_t capacity_bytes)
    : proc_(proc), base_(base), capacity_(capacity_bytes & ~3u) {
  // One big free block spanning the arena.
  StoreWord(base_, capacity_);
  StoreWord(base_ + 4, 0);
}

uint32_t Heap::LoadWord(hw::Vaddr va) { return proc_.machine().LoadWord(va).value_or(0); }

void Heap::StoreWord(hw::Vaddr va, uint32_t value) {
  (void)proc_.machine().StoreWord(va, value);
}

Result<hw::Vaddr> Heap::Alloc(uint32_t bytes) {
  if (bytes == 0) {
    bytes = kMinPayload;
  }
  const uint32_t need = ((bytes + 3) & ~3u) + kHeaderBytes;
  hw::Vaddr block = base_;
  while (block < base_ + capacity_) {
    proc_.machine().Charge(Instr(4));  // Walk step.
    const uint32_t size = LoadWord(block);
    const uint32_t used = LoadWord(block + 4);
    if (size < kHeaderBytes + kMinPayload || block + size > base_ + capacity_) {
      return Status::kErrBadState;  // Corrupted header (overrun bug).
    }
    if (used == 0 && size >= need) {
      // Split if the remainder can hold a block; otherwise take it whole.
      if (size - need >= kHeaderBytes + kMinPayload) {
        StoreWord(block + need, size - need);
        StoreWord(block + need + 4, 0);
        StoreWord(block, need);
      }
      StoreWord(block + 4, 1);
      bytes_in_use_ += LoadWord(block);
      ++live_allocs_;
      return block + kHeaderBytes;
    }
    block += size;
  }
  return Status::kErrNoResources;
}

Status Heap::Free(hw::Vaddr ptr) {
  if (ptr < base_ + kHeaderBytes || ptr >= base_ + capacity_ || (ptr & 3u) != 0) {
    return Status::kErrInvalidArgs;
  }
  // Validate that `ptr` is a live payload start by walking the list (the
  // price of the implicit-list design; also what makes Free safe).
  hw::Vaddr block = base_;
  while (block < base_ + capacity_) {
    proc_.machine().Charge(Instr(4));
    const uint32_t size = LoadWord(block);
    if (size < kHeaderBytes + kMinPayload || block + size > base_ + capacity_) {
      return Status::kErrBadState;
    }
    if (block + kHeaderBytes == ptr) {
      if (LoadWord(block + 4) != 1) {
        return Status::kErrInvalidArgs;  // Double free.
      }
      StoreWord(block + 4, 0);
      bytes_in_use_ -= size;
      --live_allocs_;
      // Coalesce forward while the next block is free.
      uint32_t merged = size;
      hw::Vaddr next = block + size;
      while (next < base_ + capacity_) {
        const uint32_t next_size = LoadWord(next);
        if (LoadWord(next + 4) != 0 || next_size < kHeaderBytes + kMinPayload) {
          break;
        }
        merged += next_size;
        next += next_size;
      }
      StoreWord(block, merged);
      return Status::kOk;
    }
    block += size;
  }
  return Status::kErrInvalidArgs;
}

bool Heap::CheckConsistency() {
  hw::Vaddr block = base_;
  uint32_t total = 0;
  while (block < base_ + capacity_) {
    const uint32_t size = LoadWord(block);
    const uint32_t used = LoadWord(block + 4);
    if (size < kHeaderBytes + kMinPayload || used > 1) {
      return false;
    }
    total += size;
    block += size;
  }
  return total == capacity_;
}

}  // namespace xok::exos
