#include "src/exos/supervisor.h"

#include <algorithm>

namespace xok::exos {

Supervisor::Supervisor(aegis::Aegis& kernel, std::vector<ChildSpec> specs,
                       const Options& options)
    : kernel_(kernel), options_(options) {
  children_.reserve(specs.size());
  for (ChildSpec& spec : specs) {
    Child child;
    child.spec = std::move(spec);
    children_.push_back(std::move(child));
  }
  proc_ = std::make_unique<Process>(
      kernel_, [this](Process&) { Main(); }, options_.process);
  PublishStatus();
}

uint32_t Supervisor::total_restarts() const {
  uint32_t total = 0;
  for (const ChildStatus& status : status_) {
    total += status.restarts;
  }
  return total;
}

void Supervisor::SetState(Child& child, ChildState state) {
  child.state = state;
  if (child.spec.on_state_change) {
    child.spec.on_state_change(state);
  }
}

void Supervisor::Spawn(Child& child) {
  // Replacing the unique_ptr drops the dead incarnation's Process;
  // environment ids are never reused, so the old id stays queryable
  // through SysEnvStats regardless.
  child.proc = std::make_unique<Process>(kernel_, child.spec.body, child.spec.options);
  if (!child.proc->ok()) {
    // Env creation failed (asid space exhausted) — nothing to wait for.
    SetState(child, ChildState::kFailed);
    return;
  }
  child.last_progress = 0;
  child.stalled = 0;
  SetState(child, ChildState::kRunning);
}

void Supervisor::HandleDeath(Child& child, bool crashed, uint64_t now) {
  const bool restart = child.spec.policy == RestartPolicy::kAlways ||
                       (crashed && child.spec.policy == RestartPolicy::kOnFailure);
  if (!restart) {
    SetState(child, crashed ? ChildState::kFailed : ChildState::kDone);
    return;
  }
  ++child.restarts;
  if (child.restarts > child.spec.max_restarts) {
    // Crash loop: restarting clearly isn't fixing it.
    SetState(child, ChildState::kFailed);
    return;
  }
  if (child.backoff == 0) {
    child.backoff = child.spec.backoff_initial;
  }
  child.restart_at = now + child.backoff;
  child.backoff = std::min(child.backoff * 2, child.spec.backoff_cap);
  SetState(child, ChildState::kBackoff);
}

void Supervisor::Main() {
  for (Child& child : children_) {
    Spawn(child);
  }
  PublishStatus();
  while (true) {
    bool live = false;
    uint64_t sleep = options_.sample_interval;
    const uint64_t now = kernel_.SysGetCycles();
    for (Child& child : children_) {
      if (child.state == ChildState::kBackoff) {
        live = true;
        if (now >= child.restart_at) {
          Spawn(child);
        } else {
          sleep = std::min(sleep, child.restart_at - now);
          continue;
        }
      }
      if (child.state != ChildState::kRunning) {
        continue;
      }
      const aegis::EnvId env = child.proc->id();
      if (!kernel_.SysEnvAlive(env)) {
        // killed=true means a crash/forced reap; a clean SysExit leaves
        // it false — that distinction drives kOnFailure.
        Result<aegis::EnvStats> stats = kernel_.SysEnvStats(env);
        const bool crashed = stats.ok() && stats->killed;
        HandleDeath(child, crashed, now);
        live = live || child.state == ChildState::kBackoff;
        continue;
      }
      live = true;
      if (child.spec.stall_samples == 0) {
        continue;
      }
      Result<aegis::EnvStats> stats = kernel_.SysEnvStats(env);
      if (!stats.ok()) {
        continue;
      }
      const uint64_t progress =
          stats->counters.cycles_on_cpu + stats->counters.syscalls_total();
      if (progress != child.last_progress) {
        child.last_progress = progress;
        child.stalled = 0;
        continue;
      }
      if (++child.stalled < child.spec.stall_samples) {
        continue;
      }
      // Heartbeat stall: alive but frozen. Reap it ourselves (we hold
      // its env_cap) and route through the normal restart path.
      (void)kernel_.SysKillEnv(env, child.proc->env_cap());
      ++child.stall_kills;
      HandleDeath(child, /*crashed=*/true, now);
      live = live || child.state == ChildState::kBackoff;
    }
    PublishStatus();
    if (!live) {
      break;
    }
    ++samples_;
    // Death notifications wake us early; the sleep only bounds how late
    // we notice a stall or a due respawn.
    kernel_.SysSleep(sleep);
  }
  finished_ = true;
  PublishStatus();
}

void Supervisor::PublishStatus() {
  status_.clear();
  status_.reserve(children_.size());
  for (const Child& child : children_) {
    ChildStatus status;
    status.name = child.spec.name;
    status.state = child.state;
    status.env = child.proc != nullptr ? child.proc->id() : aegis::kNoEnv;
    status.restarts = child.restarts;
    status.stall_kills = child.stall_kills;
    status_.push_back(std::move(status));
  }
}

}  // namespace xok::exos
