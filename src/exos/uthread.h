// User-level threads on ExOS (paper §2: "implementing lightweight threads
// on top of heavyweight processes usually requires compromises in
// correctness and performance, because the operating system hides page
// faults and timer interrupts").
//
// On an exokernel nothing is hidden: ExOS receives the end-of-slice timer
// interrupt in its own epilogue and every page fault in its own handler,
// so a thread library can be built correctly in application space:
//
//   * threads are fibers multiplexed on one environment,
//   * the slice-end epilogue sets a preemption hint, honoured at the next
//     safe point (Charge-granular, like everything in the simulator), so
//     CPU-bound threads cannot starve their siblings across slices,
//   * a thread that takes a page fault simply runs the ExOS handler on
//     its own fiber — other threads are unaffected.
//
// The API is deliberately tiny: Spawn, Yield, Join, Run.
#ifndef XOK_SRC_EXOS_UTHREAD_H_
#define XOK_SRC_EXOS_UTHREAD_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/exos/process.h"
#include "src/hw/fiber.h"

namespace xok::exos {

class ThreadGroup {
 public:
  using ThreadId = uint32_t;

  // Installs the preemption hint into `proc`'s timer epilogue. One group
  // per process.
  explicit ThreadGroup(Process& proc);

  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  // Creates a thread; it starts running once Run() is called (or at the
  // next scheduling point if spawned from inside a running thread).
  ThreadId Spawn(std::function<void()> body);

  // Runs until every thread has finished. Must be called from the
  // process's main context (not from inside a thread).
  void Run();

  // --- Called from inside threads ---

  // Cooperative reschedule point. Also the preemption point: if the slice
  // ended since the last check, the current thread is rotated to the back
  // of the run queue even if it "just yielded to check".
  void Yield();

  // Blocks the calling thread until `target` finishes.
  void Join(ThreadId target);

  ThreadId Self() const { return current_; }
  // True if the slice-end hint is pending (tests / cooperative loops).
  bool preempt_pending() const { return preempt_hint_; }
  uint64_t preemptions() const { return preemptions_; }

 private:
  static constexpr ThreadId kNoThread = 0xffffffffu;

  struct Thread {
    ThreadId id = 0;
    std::unique_ptr<hw::Fiber> fiber;
    bool finished = false;
    ThreadId joined_by = kNoThread;  // Thread waiting on us.
    bool blocked = false;            // Waiting in Join.
  };

  // Switches from the current thread back to the scheduler context.
  void SwitchToScheduler();

  Process& proc_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::deque<ThreadId> run_queue_;
  hw::Fiber scheduler_fiber_;
  ThreadId current_ = kNoThread;
  bool preempt_hint_ = false;
  uint64_t preemptions_ = 0;
};

}  // namespace xok::exos

#endif  // XOK_SRC_EXOS_UTHREAD_H_
