# Empty dependencies file for bench_abl_stlb.
# This may be replaced when dependencies are built.
