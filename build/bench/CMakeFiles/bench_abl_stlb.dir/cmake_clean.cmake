file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_stlb.dir/bench_abl_stlb.cc.o"
  "CMakeFiles/bench_abl_stlb.dir/bench_abl_stlb.cc.o.d"
  "bench_abl_stlb"
  "bench_abl_stlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_stlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
