
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_abl_stlb.cc" "bench/CMakeFiles/bench_abl_stlb.dir/bench_abl_stlb.cc.o" "gcc" "bench/CMakeFiles/bench_abl_stlb.dir/bench_abl_stlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xok_core.dir/DependInfo.cmake"
  "/root/repo/build/src/exos/CMakeFiles/xok_exos.dir/DependInfo.cmake"
  "/root/repo/build/src/ultrix/CMakeFiles/xok_ultrix.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xok_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dpf/CMakeFiles/xok_dpf.dir/DependInfo.cmake"
  "/root/repo/build/src/ash/CMakeFiles/xok_ash.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/xok_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/vcode/CMakeFiles/xok_vcode.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xok_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xok_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
