file(REMOVE_RECURSE
  "CMakeFiles/bench_t08_ipc.dir/bench_t08_ipc.cc.o"
  "CMakeFiles/bench_t08_ipc.dir/bench_t08_ipc.cc.o.d"
  "bench_t08_ipc"
  "bench_t08_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t08_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
