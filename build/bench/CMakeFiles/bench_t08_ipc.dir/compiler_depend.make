# Empty compiler generated dependencies file for bench_t08_ipc.
# This may be replaced when dependencies are built.
