file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_ash_ilp.dir/bench_abl_ash_ilp.cc.o"
  "CMakeFiles/bench_abl_ash_ilp.dir/bench_abl_ash_ilp.cc.o.d"
  "bench_abl_ash_ilp"
  "bench_abl_ash_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_ash_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
