# Empty dependencies file for bench_abl_ash_ilp.
# This may be replaced when dependencies are built.
