# Empty compiler generated dependencies file for bench_f02_ash_scaling.
# This may be replaced when dependencies are built.
