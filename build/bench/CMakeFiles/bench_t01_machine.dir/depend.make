# Empty dependencies file for bench_t01_machine.
# This may be replaced when dependencies are built.
