file(REMOVE_RECURSE
  "CMakeFiles/bench_t01_machine.dir/bench_t01_machine.cc.o"
  "CMakeFiles/bench_t01_machine.dir/bench_t01_machine.cc.o.d"
  "bench_t01_machine"
  "bench_t01_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t01_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
