# Empty compiler generated dependencies file for bench_t09_vm_matrix.
# This may be replaced when dependencies are built.
