file(REMOVE_RECURSE
  "CMakeFiles/bench_t09_vm_matrix.dir/bench_t09_vm_matrix.cc.o"
  "CMakeFiles/bench_t09_vm_matrix.dir/bench_t09_vm_matrix.cc.o.d"
  "bench_t09_vm_matrix"
  "bench_t09_vm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t09_vm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
