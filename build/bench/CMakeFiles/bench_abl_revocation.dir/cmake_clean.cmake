file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_revocation.dir/bench_abl_revocation.cc.o"
  "CMakeFiles/bench_abl_revocation.dir/bench_abl_revocation.cc.o.d"
  "bench_abl_revocation"
  "bench_abl_revocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_revocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
