file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_file_cache.dir/bench_abl_file_cache.cc.o"
  "CMakeFiles/bench_abl_file_cache.dir/bench_abl_file_cache.cc.o.d"
  "bench_abl_file_cache"
  "bench_abl_file_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_file_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
