# Empty compiler generated dependencies file for bench_abl_file_cache.
# This may be replaced when dependencies are built.
