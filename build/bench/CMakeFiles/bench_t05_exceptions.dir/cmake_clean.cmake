file(REMOVE_RECURSE
  "CMakeFiles/bench_t05_exceptions.dir/bench_t05_exceptions.cc.o"
  "CMakeFiles/bench_t05_exceptions.dir/bench_t05_exceptions.cc.o.d"
  "bench_t05_exceptions"
  "bench_t05_exceptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t05_exceptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
