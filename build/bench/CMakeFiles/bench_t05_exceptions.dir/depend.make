# Empty dependencies file for bench_t05_exceptions.
# This may be replaced when dependencies are built.
