# Empty compiler generated dependencies file for bench_t11_ash_net.
# This may be replaced when dependencies are built.
