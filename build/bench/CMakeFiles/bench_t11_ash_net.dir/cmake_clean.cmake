file(REMOVE_RECURSE
  "CMakeFiles/bench_t11_ash_net.dir/bench_t11_ash_net.cc.o"
  "CMakeFiles/bench_t11_ash_net.dir/bench_t11_ash_net.cc.o.d"
  "bench_t11_ash_net"
  "bench_t11_ash_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t11_ash_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
