# Empty compiler generated dependencies file for bench_t03_primops.
# This may be replaced when dependencies are built.
