file(REMOVE_RECURSE
  "CMakeFiles/bench_t03_primops.dir/bench_t03_primops.cc.o"
  "CMakeFiles/bench_t03_primops.dir/bench_t03_primops.cc.o.d"
  "bench_t03_primops"
  "bench_t03_primops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t03_primops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
