file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_page_table.dir/bench_abl_page_table.cc.o"
  "CMakeFiles/bench_abl_page_table.dir/bench_abl_page_table.cc.o.d"
  "bench_abl_page_table"
  "bench_abl_page_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_page_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
