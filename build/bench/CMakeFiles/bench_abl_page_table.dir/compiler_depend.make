# Empty compiler generated dependencies file for bench_abl_page_table.
# This may be replaced when dependencies are built.
