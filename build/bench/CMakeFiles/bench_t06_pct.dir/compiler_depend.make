# Empty compiler generated dependencies file for bench_t06_pct.
# This may be replaced when dependencies are built.
