file(REMOVE_RECURSE
  "CMakeFiles/bench_t06_pct.dir/bench_t06_pct.cc.o"
  "CMakeFiles/bench_t06_pct.dir/bench_t06_pct.cc.o.d"
  "bench_t06_pct"
  "bench_t06_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t06_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
