file(REMOVE_RECURSE
  "CMakeFiles/bench_t10_appel_li.dir/bench_t10_appel_li.cc.o"
  "CMakeFiles/bench_t10_appel_li.dir/bench_t10_appel_li.cc.o.d"
  "bench_t10_appel_li"
  "bench_t10_appel_li.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t10_appel_li.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
