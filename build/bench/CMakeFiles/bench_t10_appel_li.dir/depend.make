# Empty dependencies file for bench_t10_appel_li.
# This may be replaced when dependencies are built.
