# Empty dependencies file for bench_t02_null_call.
# This may be replaced when dependencies are built.
