file(REMOVE_RECURSE
  "CMakeFiles/bench_t02_null_call.dir/bench_t02_null_call.cc.o"
  "CMakeFiles/bench_t02_null_call.dir/bench_t02_null_call.cc.o.d"
  "bench_t02_null_call"
  "bench_t02_null_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t02_null_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
