file(REMOVE_RECURSE
  "CMakeFiles/bench_t07_dpf.dir/bench_t07_dpf.cc.o"
  "CMakeFiles/bench_t07_dpf.dir/bench_t07_dpf.cc.o.d"
  "bench_t07_dpf"
  "bench_t07_dpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t07_dpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
