# Empty compiler generated dependencies file for bench_t07_dpf.
# This may be replaced when dependencies are built.
