file(REMOVE_RECURSE
  "CMakeFiles/bench_t04_ctx_switch.dir/bench_t04_ctx_switch.cc.o"
  "CMakeFiles/bench_t04_ctx_switch.dir/bench_t04_ctx_switch.cc.o.d"
  "bench_t04_ctx_switch"
  "bench_t04_ctx_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t04_ctx_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
