# Empty compiler generated dependencies file for bench_t04_ctx_switch.
# This may be replaced when dependencies are built.
