# Empty dependencies file for bench_f03_stride.
# This may be replaced when dependencies are built.
