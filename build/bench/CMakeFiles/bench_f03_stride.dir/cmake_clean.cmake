file(REMOVE_RECURSE
  "CMakeFiles/bench_f03_stride.dir/bench_f03_stride.cc.o"
  "CMakeFiles/bench_f03_stride.dir/bench_f03_stride.cc.o.d"
  "bench_f03_stride"
  "bench_f03_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f03_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
