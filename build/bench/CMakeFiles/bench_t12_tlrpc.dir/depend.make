# Empty dependencies file for bench_t12_tlrpc.
# This may be replaced when dependencies are built.
