file(REMOVE_RECURSE
  "CMakeFiles/bench_t12_tlrpc.dir/bench_t12_tlrpc.cc.o"
  "CMakeFiles/bench_t12_tlrpc.dir/bench_t12_tlrpc.cc.o.d"
  "bench_t12_tlrpc"
  "bench_t12_tlrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t12_tlrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
