file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_yield.dir/bench_abl_yield.cc.o"
  "CMakeFiles/bench_abl_yield.dir/bench_abl_yield.cc.o.d"
  "bench_abl_yield"
  "bench_abl_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
