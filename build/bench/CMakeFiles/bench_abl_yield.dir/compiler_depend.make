# Empty compiler generated dependencies file for bench_abl_yield.
# This may be replaced when dependencies are built.
