file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dpf.dir/bench_abl_dpf.cc.o"
  "CMakeFiles/bench_abl_dpf.dir/bench_abl_dpf.cc.o.d"
  "bench_abl_dpf"
  "bench_abl_dpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
