# Empty dependencies file for bench_abl_dpf.
# This may be replaced when dependencies are built.
