file(REMOVE_RECURSE
  "CMakeFiles/dsm.dir/dsm.cpp.o"
  "CMakeFiles/dsm.dir/dsm.cpp.o.d"
  "dsm"
  "dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
