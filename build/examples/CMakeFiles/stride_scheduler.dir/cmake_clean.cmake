file(REMOVE_RECURSE
  "CMakeFiles/stride_scheduler.dir/stride_scheduler.cpp.o"
  "CMakeFiles/stride_scheduler.dir/stride_scheduler.cpp.o.d"
  "stride_scheduler"
  "stride_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stride_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
