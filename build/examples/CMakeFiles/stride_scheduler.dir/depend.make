# Empty dependencies file for stride_scheduler.
# This may be replaced when dependencies are built.
