# Empty compiler generated dependencies file for db_scan.
# This may be replaced when dependencies are built.
