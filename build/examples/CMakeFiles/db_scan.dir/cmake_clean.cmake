file(REMOVE_RECURSE
  "CMakeFiles/db_scan.dir/db_scan.cpp.o"
  "CMakeFiles/db_scan.dir/db_scan.cpp.o.d"
  "db_scan"
  "db_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
