file(REMOVE_RECURSE
  "CMakeFiles/custom_libos.dir/custom_libos.cpp.o"
  "CMakeFiles/custom_libos.dir/custom_libos.cpp.o.d"
  "custom_libos"
  "custom_libos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_libos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
