# Empty compiler generated dependencies file for custom_libos.
# This may be replaced when dependencies are built.
