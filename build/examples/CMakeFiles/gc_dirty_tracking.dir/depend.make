# Empty dependencies file for gc_dirty_tracking.
# This may be replaced when dependencies are built.
