file(REMOVE_RECURSE
  "CMakeFiles/gc_dirty_tracking.dir/gc_dirty_tracking.cpp.o"
  "CMakeFiles/gc_dirty_tracking.dir/gc_dirty_tracking.cpp.o.d"
  "gc_dirty_tracking"
  "gc_dirty_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_dirty_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
