file(REMOVE_RECURSE
  "CMakeFiles/packet_demux.dir/packet_demux.cpp.o"
  "CMakeFiles/packet_demux.dir/packet_demux.cpp.o.d"
  "packet_demux"
  "packet_demux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_demux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
