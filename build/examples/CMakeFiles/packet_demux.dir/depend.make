# Empty dependencies file for packet_demux.
# This may be replaced when dependencies are built.
