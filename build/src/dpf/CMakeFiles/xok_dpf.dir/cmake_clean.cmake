file(REMOVE_RECURSE
  "CMakeFiles/xok_dpf.dir/dpf.cc.o"
  "CMakeFiles/xok_dpf.dir/dpf.cc.o.d"
  "CMakeFiles/xok_dpf.dir/filter.cc.o"
  "CMakeFiles/xok_dpf.dir/filter.cc.o.d"
  "CMakeFiles/xok_dpf.dir/mpf.cc.o"
  "CMakeFiles/xok_dpf.dir/mpf.cc.o.d"
  "CMakeFiles/xok_dpf.dir/pathfinder.cc.o"
  "CMakeFiles/xok_dpf.dir/pathfinder.cc.o.d"
  "libxok_dpf.a"
  "libxok_dpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_dpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
