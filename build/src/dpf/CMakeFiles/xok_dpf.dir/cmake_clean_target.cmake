file(REMOVE_RECURSE
  "libxok_dpf.a"
)
