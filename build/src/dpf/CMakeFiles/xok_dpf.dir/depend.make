# Empty dependencies file for xok_dpf.
# This may be replaced when dependencies are built.
