file(REMOVE_RECURSE
  "CMakeFiles/xok_ash.dir/ash.cc.o"
  "CMakeFiles/xok_ash.dir/ash.cc.o.d"
  "libxok_ash.a"
  "libxok_ash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_ash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
