file(REMOVE_RECURSE
  "libxok_ash.a"
)
