# Empty compiler generated dependencies file for xok_ash.
# This may be replaced when dependencies are built.
