file(REMOVE_RECURSE
  "libxok_net.a"
)
