file(REMOVE_RECURSE
  "CMakeFiles/xok_net.dir/wire.cc.o"
  "CMakeFiles/xok_net.dir/wire.cc.o.d"
  "libxok_net.a"
  "libxok_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
