# Empty dependencies file for xok_net.
# This may be replaced when dependencies are built.
