file(REMOVE_RECURSE
  "CMakeFiles/xok_core.dir/aegis.cc.o"
  "CMakeFiles/xok_core.dir/aegis.cc.o.d"
  "libxok_core.a"
  "libxok_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
