# Empty dependencies file for xok_core.
# This may be replaced when dependencies are built.
