file(REMOVE_RECURSE
  "libxok_core.a"
)
