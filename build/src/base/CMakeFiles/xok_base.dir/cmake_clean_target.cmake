file(REMOVE_RECURSE
  "libxok_base.a"
)
