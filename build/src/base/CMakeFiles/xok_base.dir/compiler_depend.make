# Empty compiler generated dependencies file for xok_base.
# This may be replaced when dependencies are built.
