file(REMOVE_RECURSE
  "CMakeFiles/xok_base.dir/status.cc.o"
  "CMakeFiles/xok_base.dir/status.cc.o.d"
  "libxok_base.a"
  "libxok_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
