file(REMOVE_RECURSE
  "libxok_exos.a"
)
