
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exos/fs.cc" "src/exos/CMakeFiles/xok_exos.dir/fs.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/fs.cc.o.d"
  "/root/repo/src/exos/heap.cc" "src/exos/CMakeFiles/xok_exos.dir/heap.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/heap.cc.o.d"
  "/root/repo/src/exos/ipc.cc" "src/exos/CMakeFiles/xok_exos.dir/ipc.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/ipc.cc.o.d"
  "/root/repo/src/exos/process.cc" "src/exos/CMakeFiles/xok_exos.dir/process.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/process.cc.o.d"
  "/root/repo/src/exos/rdp.cc" "src/exos/CMakeFiles/xok_exos.dir/rdp.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/rdp.cc.o.d"
  "/root/repo/src/exos/stride.cc" "src/exos/CMakeFiles/xok_exos.dir/stride.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/stride.cc.o.d"
  "/root/repo/src/exos/udp.cc" "src/exos/CMakeFiles/xok_exos.dir/udp.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/udp.cc.o.d"
  "/root/repo/src/exos/uthread.cc" "src/exos/CMakeFiles/xok_exos.dir/uthread.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/uthread.cc.o.d"
  "/root/repo/src/exos/vm.cc" "src/exos/CMakeFiles/xok_exos.dir/vm.cc.o" "gcc" "src/exos/CMakeFiles/xok_exos.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xok_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/xok_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ash/CMakeFiles/xok_ash.dir/DependInfo.cmake"
  "/root/repo/build/src/cap/CMakeFiles/xok_cap.dir/DependInfo.cmake"
  "/root/repo/build/src/dpf/CMakeFiles/xok_dpf.dir/DependInfo.cmake"
  "/root/repo/build/src/vcode/CMakeFiles/xok_vcode.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/xok_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xok_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
