file(REMOVE_RECURSE
  "CMakeFiles/xok_exos.dir/fs.cc.o"
  "CMakeFiles/xok_exos.dir/fs.cc.o.d"
  "CMakeFiles/xok_exos.dir/heap.cc.o"
  "CMakeFiles/xok_exos.dir/heap.cc.o.d"
  "CMakeFiles/xok_exos.dir/ipc.cc.o"
  "CMakeFiles/xok_exos.dir/ipc.cc.o.d"
  "CMakeFiles/xok_exos.dir/process.cc.o"
  "CMakeFiles/xok_exos.dir/process.cc.o.d"
  "CMakeFiles/xok_exos.dir/rdp.cc.o"
  "CMakeFiles/xok_exos.dir/rdp.cc.o.d"
  "CMakeFiles/xok_exos.dir/stride.cc.o"
  "CMakeFiles/xok_exos.dir/stride.cc.o.d"
  "CMakeFiles/xok_exos.dir/udp.cc.o"
  "CMakeFiles/xok_exos.dir/udp.cc.o.d"
  "CMakeFiles/xok_exos.dir/uthread.cc.o"
  "CMakeFiles/xok_exos.dir/uthread.cc.o.d"
  "CMakeFiles/xok_exos.dir/vm.cc.o"
  "CMakeFiles/xok_exos.dir/vm.cc.o.d"
  "libxok_exos.a"
  "libxok_exos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_exos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
