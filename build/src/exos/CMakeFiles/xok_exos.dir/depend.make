# Empty dependencies file for xok_exos.
# This may be replaced when dependencies are built.
