file(REMOVE_RECURSE
  "libxok_ultrix.a"
)
