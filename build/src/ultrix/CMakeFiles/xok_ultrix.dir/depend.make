# Empty dependencies file for xok_ultrix.
# This may be replaced when dependencies are built.
