file(REMOVE_RECURSE
  "CMakeFiles/xok_ultrix.dir/ultrix.cc.o"
  "CMakeFiles/xok_ultrix.dir/ultrix.cc.o.d"
  "libxok_ultrix.a"
  "libxok_ultrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_ultrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
