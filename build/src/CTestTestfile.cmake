# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("hw")
subdirs("cap")
subdirs("vcode")
subdirs("dpf")
subdirs("ash")
subdirs("core")
subdirs("exos")
subdirs("net")
subdirs("ultrix")
