file(REMOVE_RECURSE
  "libxok_vcode.a"
)
