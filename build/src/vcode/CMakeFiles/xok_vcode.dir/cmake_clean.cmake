file(REMOVE_RECURSE
  "CMakeFiles/xok_vcode.dir/vcode.cc.o"
  "CMakeFiles/xok_vcode.dir/vcode.cc.o.d"
  "libxok_vcode.a"
  "libxok_vcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_vcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
