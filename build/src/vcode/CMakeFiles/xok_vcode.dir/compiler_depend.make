# Empty compiler generated dependencies file for xok_vcode.
# This may be replaced when dependencies are built.
