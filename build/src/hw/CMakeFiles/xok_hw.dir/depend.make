# Empty dependencies file for xok_hw.
# This may be replaced when dependencies are built.
