file(REMOVE_RECURSE
  "libxok_hw.a"
)
