
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/fiber.cc" "src/hw/CMakeFiles/xok_hw.dir/fiber.cc.o" "gcc" "src/hw/CMakeFiles/xok_hw.dir/fiber.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/xok_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/xok_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/nic.cc" "src/hw/CMakeFiles/xok_hw.dir/nic.cc.o" "gcc" "src/hw/CMakeFiles/xok_hw.dir/nic.cc.o.d"
  "/root/repo/src/hw/world.cc" "src/hw/CMakeFiles/xok_hw.dir/world.cc.o" "gcc" "src/hw/CMakeFiles/xok_hw.dir/world.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xok_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
