file(REMOVE_RECURSE
  "CMakeFiles/xok_hw.dir/fiber.cc.o"
  "CMakeFiles/xok_hw.dir/fiber.cc.o.d"
  "CMakeFiles/xok_hw.dir/machine.cc.o"
  "CMakeFiles/xok_hw.dir/machine.cc.o.d"
  "CMakeFiles/xok_hw.dir/nic.cc.o"
  "CMakeFiles/xok_hw.dir/nic.cc.o.d"
  "CMakeFiles/xok_hw.dir/world.cc.o"
  "CMakeFiles/xok_hw.dir/world.cc.o.d"
  "libxok_hw.a"
  "libxok_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
