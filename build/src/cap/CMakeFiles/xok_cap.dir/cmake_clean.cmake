file(REMOVE_RECURSE
  "CMakeFiles/xok_cap.dir/capability.cc.o"
  "CMakeFiles/xok_cap.dir/capability.cc.o.d"
  "CMakeFiles/xok_cap.dir/siphash.cc.o"
  "CMakeFiles/xok_cap.dir/siphash.cc.o.d"
  "libxok_cap.a"
  "libxok_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xok_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
