file(REMOVE_RECURSE
  "libxok_cap.a"
)
