# Empty compiler generated dependencies file for xok_cap.
# This may be replaced when dependencies are built.
