file(REMOVE_RECURSE
  "CMakeFiles/aegis_isolation_test.dir/aegis_isolation_test.cc.o"
  "CMakeFiles/aegis_isolation_test.dir/aegis_isolation_test.cc.o.d"
  "aegis_isolation_test"
  "aegis_isolation_test.pdb"
  "aegis_isolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegis_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
