# Empty dependencies file for aegis_isolation_test.
# This may be replaced when dependencies are built.
