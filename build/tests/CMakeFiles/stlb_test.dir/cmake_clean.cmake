file(REMOVE_RECURSE
  "CMakeFiles/stlb_test.dir/stlb_test.cc.o"
  "CMakeFiles/stlb_test.dir/stlb_test.cc.o.d"
  "stlb_test"
  "stlb_test.pdb"
  "stlb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
