# Empty compiler generated dependencies file for stlb_test.
# This may be replaced when dependencies are built.
