file(REMOVE_RECURSE
  "CMakeFiles/hw_fiber_test.dir/hw_fiber_test.cc.o"
  "CMakeFiles/hw_fiber_test.dir/hw_fiber_test.cc.o.d"
  "hw_fiber_test"
  "hw_fiber_test.pdb"
  "hw_fiber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_fiber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
