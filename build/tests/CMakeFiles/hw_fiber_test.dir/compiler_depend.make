# Empty compiler generated dependencies file for hw_fiber_test.
# This may be replaced when dependencies are built.
