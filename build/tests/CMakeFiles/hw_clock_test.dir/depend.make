# Empty dependencies file for hw_clock_test.
# This may be replaced when dependencies are built.
