file(REMOVE_RECURSE
  "CMakeFiles/hw_clock_test.dir/hw_clock_test.cc.o"
  "CMakeFiles/hw_clock_test.dir/hw_clock_test.cc.o.d"
  "hw_clock_test"
  "hw_clock_test.pdb"
  "hw_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
