file(REMOVE_RECURSE
  "CMakeFiles/aegis_edge_test.dir/aegis_edge_test.cc.o"
  "CMakeFiles/aegis_edge_test.dir/aegis_edge_test.cc.o.d"
  "aegis_edge_test"
  "aegis_edge_test.pdb"
  "aegis_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegis_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
