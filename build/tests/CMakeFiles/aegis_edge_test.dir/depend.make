# Empty dependencies file for aegis_edge_test.
# This may be replaced when dependencies are built.
