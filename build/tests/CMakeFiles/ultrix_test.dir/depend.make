# Empty dependencies file for ultrix_test.
# This may be replaced when dependencies are built.
