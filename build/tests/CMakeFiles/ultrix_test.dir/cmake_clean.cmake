file(REMOVE_RECURSE
  "CMakeFiles/ultrix_test.dir/ultrix_test.cc.o"
  "CMakeFiles/ultrix_test.dir/ultrix_test.cc.o.d"
  "ultrix_test"
  "ultrix_test.pdb"
  "ultrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
