file(REMOVE_RECURSE
  "CMakeFiles/exos_ipt_test.dir/exos_ipt_test.cc.o"
  "CMakeFiles/exos_ipt_test.dir/exos_ipt_test.cc.o.d"
  "exos_ipt_test"
  "exos_ipt_test.pdb"
  "exos_ipt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exos_ipt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
