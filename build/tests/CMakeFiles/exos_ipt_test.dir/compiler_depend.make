# Empty compiler generated dependencies file for exos_ipt_test.
# This may be replaced when dependencies are built.
