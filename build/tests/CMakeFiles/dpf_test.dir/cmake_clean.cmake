file(REMOVE_RECURSE
  "CMakeFiles/dpf_test.dir/dpf_test.cc.o"
  "CMakeFiles/dpf_test.dir/dpf_test.cc.o.d"
  "dpf_test"
  "dpf_test.pdb"
  "dpf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
