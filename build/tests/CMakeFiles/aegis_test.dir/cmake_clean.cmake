file(REMOVE_RECURSE
  "CMakeFiles/aegis_test.dir/aegis_test.cc.o"
  "CMakeFiles/aegis_test.dir/aegis_test.cc.o.d"
  "aegis_test"
  "aegis_test.pdb"
  "aegis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aegis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
