# Empty dependencies file for aegis_test.
# This may be replaced when dependencies are built.
