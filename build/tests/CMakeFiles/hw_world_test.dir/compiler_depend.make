# Empty compiler generated dependencies file for hw_world_test.
# This may be replaced when dependencies are built.
