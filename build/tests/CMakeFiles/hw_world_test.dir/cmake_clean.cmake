file(REMOVE_RECURSE
  "CMakeFiles/hw_world_test.dir/hw_world_test.cc.o"
  "CMakeFiles/hw_world_test.dir/hw_world_test.cc.o.d"
  "hw_world_test"
  "hw_world_test.pdb"
  "hw_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
