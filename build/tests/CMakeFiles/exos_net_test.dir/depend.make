# Empty dependencies file for exos_net_test.
# This may be replaced when dependencies are built.
