file(REMOVE_RECURSE
  "CMakeFiles/exos_net_test.dir/exos_net_test.cc.o"
  "CMakeFiles/exos_net_test.dir/exos_net_test.cc.o.d"
  "exos_net_test"
  "exos_net_test.pdb"
  "exos_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exos_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
