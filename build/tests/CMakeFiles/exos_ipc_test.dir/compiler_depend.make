# Empty compiler generated dependencies file for exos_ipc_test.
# This may be replaced when dependencies are built.
