file(REMOVE_RECURSE
  "CMakeFiles/exos_ipc_test.dir/exos_ipc_test.cc.o"
  "CMakeFiles/exos_ipc_test.dir/exos_ipc_test.cc.o.d"
  "exos_ipc_test"
  "exos_ipc_test.pdb"
  "exos_ipc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exos_ipc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
