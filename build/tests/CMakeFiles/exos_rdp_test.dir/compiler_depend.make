# Empty compiler generated dependencies file for exos_rdp_test.
# This may be replaced when dependencies are built.
