file(REMOVE_RECURSE
  "CMakeFiles/exos_rdp_test.dir/exos_rdp_test.cc.o"
  "CMakeFiles/exos_rdp_test.dir/exos_rdp_test.cc.o.d"
  "exos_rdp_test"
  "exos_rdp_test.pdb"
  "exos_rdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exos_rdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
