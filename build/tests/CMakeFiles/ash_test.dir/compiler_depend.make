# Empty compiler generated dependencies file for ash_test.
# This may be replaced when dependencies are built.
