file(REMOVE_RECURSE
  "CMakeFiles/ash_test.dir/ash_test.cc.o"
  "CMakeFiles/ash_test.dir/ash_test.cc.o.d"
  "ash_test"
  "ash_test.pdb"
  "ash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
