# Empty compiler generated dependencies file for exos_fs_test.
# This may be replaced when dependencies are built.
