file(REMOVE_RECURSE
  "CMakeFiles/exos_fs_test.dir/exos_fs_test.cc.o"
  "CMakeFiles/exos_fs_test.dir/exos_fs_test.cc.o.d"
  "exos_fs_test"
  "exos_fs_test.pdb"
  "exos_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exos_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
