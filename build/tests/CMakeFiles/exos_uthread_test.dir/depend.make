# Empty dependencies file for exos_uthread_test.
# This may be replaced when dependencies are built.
