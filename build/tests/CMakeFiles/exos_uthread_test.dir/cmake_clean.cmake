file(REMOVE_RECURSE
  "CMakeFiles/exos_uthread_test.dir/exos_uthread_test.cc.o"
  "CMakeFiles/exos_uthread_test.dir/exos_uthread_test.cc.o.d"
  "exos_uthread_test"
  "exos_uthread_test.pdb"
  "exos_uthread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exos_uthread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
