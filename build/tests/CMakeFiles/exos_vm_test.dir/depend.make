# Empty dependencies file for exos_vm_test.
# This may be replaced when dependencies are built.
