file(REMOVE_RECURSE
  "CMakeFiles/exos_vm_test.dir/exos_vm_test.cc.o"
  "CMakeFiles/exos_vm_test.dir/exos_vm_test.cc.o.d"
  "exos_vm_test"
  "exos_vm_test.pdb"
  "exos_vm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exos_vm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
