file(REMOVE_RECURSE
  "CMakeFiles/hw_machine_test.dir/hw_machine_test.cc.o"
  "CMakeFiles/hw_machine_test.dir/hw_machine_test.cc.o.d"
  "hw_machine_test"
  "hw_machine_test.pdb"
  "hw_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
