file(REMOVE_RECURSE
  "CMakeFiles/vcode_fuzz_test.dir/vcode_fuzz_test.cc.o"
  "CMakeFiles/vcode_fuzz_test.dir/vcode_fuzz_test.cc.o.d"
  "vcode_fuzz_test"
  "vcode_fuzz_test.pdb"
  "vcode_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcode_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
