file(REMOVE_RECURSE
  "CMakeFiles/exos_heap_test.dir/exos_heap_test.cc.o"
  "CMakeFiles/exos_heap_test.dir/exos_heap_test.cc.o.d"
  "exos_heap_test"
  "exos_heap_test.pdb"
  "exos_heap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exos_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
