# Empty compiler generated dependencies file for exos_heap_test.
# This may be replaced when dependencies are built.
