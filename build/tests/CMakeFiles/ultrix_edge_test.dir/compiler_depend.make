# Empty compiler generated dependencies file for ultrix_edge_test.
# This may be replaced when dependencies are built.
