file(REMOVE_RECURSE
  "CMakeFiles/ultrix_edge_test.dir/ultrix_edge_test.cc.o"
  "CMakeFiles/ultrix_edge_test.dir/ultrix_edge_test.cc.o.d"
  "ultrix_edge_test"
  "ultrix_edge_test.pdb"
  "ultrix_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ultrix_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
