# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hw_clock_test[1]_include.cmake")
include("/root/repo/build/tests/hw_tlb_test[1]_include.cmake")
include("/root/repo/build/tests/hw_fiber_test[1]_include.cmake")
include("/root/repo/build/tests/hw_machine_test[1]_include.cmake")
include("/root/repo/build/tests/hw_nic_test[1]_include.cmake")
include("/root/repo/build/tests/hw_devices_test[1]_include.cmake")
include("/root/repo/build/tests/cap_test[1]_include.cmake")
include("/root/repo/build/tests/vcode_test[1]_include.cmake")
include("/root/repo/build/tests/dpf_test[1]_include.cmake")
include("/root/repo/build/tests/net_wire_test[1]_include.cmake")
include("/root/repo/build/tests/aegis_test[1]_include.cmake")
include("/root/repo/build/tests/ash_test[1]_include.cmake")
include("/root/repo/build/tests/exos_vm_test[1]_include.cmake")
include("/root/repo/build/tests/exos_ipc_test[1]_include.cmake")
include("/root/repo/build/tests/ultrix_test[1]_include.cmake")
include("/root/repo/build/tests/exos_net_test[1]_include.cmake")
include("/root/repo/build/tests/exos_fs_test[1]_include.cmake")
include("/root/repo/build/tests/stlb_test[1]_include.cmake")
include("/root/repo/build/tests/hw_world_test[1]_include.cmake")
include("/root/repo/build/tests/aegis_edge_test[1]_include.cmake")
include("/root/repo/build/tests/param_sweeps_test[1]_include.cmake")
include("/root/repo/build/tests/exos_uthread_test[1]_include.cmake")
include("/root/repo/build/tests/ultrix_edge_test[1]_include.cmake")
include("/root/repo/build/tests/vcode_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/exos_rdp_test[1]_include.cmake")
include("/root/repo/build/tests/exos_heap_test[1]_include.cmake")
include("/root/repo/build/tests/exos_ipt_test[1]_include.cmake")
include("/root/repo/build/tests/aegis_isolation_test[1]_include.cmake")
