// Ablation: where does DPF's win come from? Three configurations on the
// ten-TCP/IP-filter workload:
//   * interpreted        — the MPF-style baseline (no codegen, no merge),
//   * compiled, unmerged — DPF with merging disabled (each filter is its
//                          own straight-line compiled program),
//   * compiled + merged  — full DPF (shared-prefix trie + hash dispatch).
// The paper attributes the bulk of the win to dynamic code generation and
// the rest to merging; this bench separates the two.
#include "bench/bench_util.h"
#include "src/base/rand.h"
#include "src/dpf/dpf.h"
#include "src/dpf/mpf.h"
#include "src/dpf/tcpip_filters.h"

namespace xok::bench {
namespace {

std::vector<uint8_t> TcpPacket(uint16_t src_port, uint16_t dst_port) {
  std::vector<uint8_t> frame(64, 0);
  net::PutBe16(frame, net::kEthTypeOff, net::kEthTypeIpv4);
  frame[net::kIpVersionIhlOff] = 0x45;
  frame[net::kIpProtoOff] = net::kIpProtoTcp;
  net::PutBe32(frame, net::kIpSrcOff, 10);
  net::PutBe32(frame, net::kIpDstOff, 20);
  net::PutBe16(frame, net::kTcpSrcPortOff, src_port);
  net::PutBe16(frame, net::kTcpDstPortOff, dst_port);
  return frame;
}

double SimUsPerClassify(dpf::ClassifierEngine& engine) {
  SplitMix64 rng(7);
  constexpr int kIters = 10'000;
  const uint64_t before = engine.sim_cycles();
  for (int i = 0; i < kIters; ++i) {
    const uint16_t conn = static_cast<uint16_t>(rng.NextBelow(10));
    auto pkt = TcpPacket(1000 + conn, 2000 + conn);
    benchmark::DoNotOptimize(engine.Classify(pkt));
  }
  return Us(engine.sim_cycles() - before) / kIters;
}

void Install(dpf::ClassifierEngine& engine) {
  for (uint16_t i = 0; i < 10; ++i) {
    if (!engine.Insert(dpf::TcpConnectionFilter(10, 20, 1000 + i, 2000 + i)).ok()) {
      std::abort();
    }
  }
}

void PrintPaperTables() {
  dpf::MpfEngine interpreted;
  Install(interpreted);

  dpf::DpfEngine unmerged;
  unmerged.set_merging_enabled(false);
  Install(unmerged);

  dpf::DpfEngine merged;
  Install(merged);

  const double interp_us = SimUsPerClassify(interpreted);
  const double unmerged_us = SimUsPerClassify(unmerged);
  const double merged_us = SimUsPerClassify(merged);

  Table table("Ablation: DPF = code generation + filter merging (us, simulated)",
              {"configuration", "per packet", "vs full DPF"});
  table.AddRow({"interpreted (MPF-style)", FmtUs(interp_us), FmtX(interp_us / merged_us)});
  table.AddRow({"compiled, unmerged", FmtUs(unmerged_us), FmtX(unmerged_us / merged_us)});
  table.AddRow({"compiled + merged (DPF)", FmtUs(merged_us), "1.0x"});
  table.Print();
  std::printf("Code generation removes per-op interpretation; merging removes the\n"
              "per-filter pass. Both are needed for the full Table 7 result.\n");
}

void BM_CompiledUnmerged(benchmark::State& state) {
  dpf::DpfEngine engine;
  engine.set_merging_enabled(false);
  Install(engine);
  SplitMix64 rng(7);
  std::vector<std::vector<uint8_t>> packets;
  for (int i = 0; i < 64; ++i) {
    const uint16_t conn = static_cast<uint16_t>(rng.NextBelow(10));
    packets.push_back(TcpPacket(1000 + conn, 2000 + conn));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Classify(packets[i++ & 63]));
  }
}
BENCHMARK(BM_CompiledUnmerged);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
