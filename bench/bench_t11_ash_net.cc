// Table 11: roundtrip latency of a 60-byte UDP/IP counter ping-pong over
// (simulated 10 Mb/s) Ethernet:
//   * ExOS with an echo ASH (reply sent from the interrupt handler),
//   * ExOS without ASHs (kernel queue + process scheduling),
//   * Ultrix UDP sockets,
//   * FRPC (published figure, quoted as the paper does),
//   * the raw wire lower bound (serialisation + controller latency only).
#include "bench/bench_util.h"
#include "src/exos/udp.h"
#include "src/hw/world.h"

namespace xok::bench {
namespace {

constexpr int kRounds = 256;  // The paper uses 4096; shape converges long before.
constexpr uint16_t kClientPort = 100;
constexpr uint16_t kServerPort = 200;

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

// The wire-only lower bound for one 60-byte roundtrip.
uint64_t WireLowerBoundCycles() {
  const uint64_t one_way = 60 * hw::kWireCyclesPerByte + 2 * hw::kNicControllerLatency;
  return 2 * one_way;
}

enum class ServerKind { kAsh, kExosQueue };

uint64_t MeasureExos(ServerKind kind) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "cli"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "srv"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Wire wire;
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  uint64_t per_roundtrip = 0;
  exos::Process client(ka, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    if (socket.Bind(kClientPort) != Status::kOk) {
      std::abort();
    }
    p.kernel().SysSleep(hw::kClockHz / 100);
    std::vector<uint8_t> counter = {0, 0, 0, 0};
    const uint64_t t0 = ma.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)socket.SendTo(2, kServerPort, counter);
      Result<exos::Datagram> reply = socket.Recv();
      if (!reply.ok()) {
        std::abort();
      }
      counter = reply->payload;
    }
    per_roundtrip = (ma.clock().now() - t0) / kRounds;
  });
  exos::Process server(kb, [&](exos::Process& p) {
    if (kind == ServerKind::kAsh) {
      exos::AshEchoConfig config;
      config.iface = exos::NetIface{0xb, 2, Resolve};
      config.port = kServerPort;
      config.peer_ip = 1;
      config.peer_port = kClientPort;
      if (!exos::BindEchoAsh(p, config).ok()) {
        std::abort();
      }
      p.kernel().SysSleep(hw::kClockHz * 4);  // The ASH does the work.
    } else {
      exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
      if (socket.Bind(kServerPort) != Status::kOk) {
        std::abort();
      }
      for (int i = 0; i < kRounds; ++i) {
        Result<exos::Datagram> request = socket.Recv();
        if (!request.ok()) {
          std::abort();
        }
        std::vector<uint8_t> bumped(4);
        net::PutBe32(bumped, 0, net::GetBe32(request->payload, 0) + 1);
        (void)socket.SendTo(request->src_ip, request->src_port, bumped);
      }
    }
  });
  if (!client.ok() || !server.ok()) {
    std::abort();
  }
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  return per_roundtrip;
}

uint64_t MeasureUltrix() {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "ucli"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "usrv"}, &world);
  ultrix::Ultrix ka(ma);
  ultrix::Ultrix kb(mb);
  hw::Wire wire;
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na, ultrix::Ultrix::NetConfig{0xa, 1, Resolve});
  kb.AttachNic(&nb, ultrix::Ultrix::NetConfig{0xb, 2, Resolve});

  uint64_t per_roundtrip = 0;
  (void)ka.CreateProcess([&] {
    Result<int> fd = ka.SysSocketUdp();
    (void)ka.SysBindPort(*fd, kClientPort);
    ka.SysSleep(hw::kClockHz / 100);
    std::vector<uint8_t> counter = {0, 0, 0, 0};
    const uint64_t t0 = ma.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)ka.SysSendTo(*fd, 2, kServerPort, counter);
      Result<ultrix::Datagram> reply = ka.SysRecvFrom(*fd);
      if (!reply.ok()) {
        std::abort();
      }
      counter = reply->payload;
    }
    per_roundtrip = (ma.clock().now() - t0) / kRounds;
  });
  (void)kb.CreateProcess([&] {
    Result<int> fd = kb.SysSocketUdp();
    (void)kb.SysBindPort(*fd, kServerPort);
    for (int i = 0; i < kRounds; ++i) {
      Result<ultrix::Datagram> request = kb.SysRecvFrom(*fd);
      if (!request.ok()) {
        std::abort();
      }
      std::vector<uint8_t> bumped(4);
      net::PutBe32(bumped, 0, net::GetBe32(request->payload, 0) + 1);
      (void)kb.SysSendTo(*fd, request->src_ip, request->src_port, bumped);
    }
  });
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  return per_roundtrip;
}

void PrintPaperTables() {
  const uint64_t ash = MeasureExos(ServerKind::kAsh);
  const uint64_t no_ash = MeasureExos(ServerKind::kExosQueue);
  const uint64_t ultrix = MeasureUltrix();
  const uint64_t wire = WireLowerBoundCycles();
  // FRPC published 340 us on DECstation 5000/200s (1.2x our machine on
  // SPECint92); quote scaled to the 5000/125 as the paper frames it.
  const double frpc_us = 340.0 * 1.2;

  Table table("Table 11: 60-byte UDP roundtrip over Ethernet (us, simulated)",
              {"system", "roundtrip", "over wire bound"});
  table.AddRow({"wire lower bound", FmtUs(Us(wire)), "-"});
  table.AddRow({"ExOS + ASH", FmtUs(Us(ash)), FmtUs(Us(ash) - Us(wire))});
  table.AddRow({"ExOS (no ASH)", FmtUs(Us(no_ash)), FmtUs(Us(no_ash) - Us(wire))});
  table.AddRow({"FRPC (published, scaled)", FmtUs(frpc_us), "-"});
  table.AddRow({"Ultrix UDP", FmtUs(Us(ultrix)), FmtUs(Us(ultrix) - Us(wire))});
  table.Print();
  std::printf("Paper shape check: ASH within a small constant of the wire bound;\n"
              "no-ASH costs more; Ultrix costs the most; ASH beats FRPC.\n");
}

void BM_AshRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureExos(ServerKind::kAsh));
  }
  state.counters["sim_us"] = Us(MeasureExos(ServerKind::kAsh));
}
BENCHMARK(BM_AshRoundtrip)->Unit(benchmark::kMillisecond);

void BM_UltrixUdpRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureUltrix());
  }
  state.counters["sim_us"] = Us(MeasureUltrix());
}
BENCHMARK(BM_UltrixUdpRoundtrip)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
