// Table 6: protected control transfer, compared (as the paper does) to
// L3's published IPC time scaled by SPECint92 to the experiment machine.
// We measure a single-word sync PCT call and report the one-way time as
// half the call/return pair, plus the async (one-way queued) variant.
#include "bench/bench_util.h"

namespace xok::bench {
namespace {

constexpr int kIters = 2'000;
// L3 published 5.0 us on a 486 DX-50; the paper scales by SPECint92
// (DEC5000/125 = 16.1 vs 486 = 30.1), making the comparator slower on the
// slower machine: 5.0 * 30.1 / 16.1.
constexpr double kL3ScaledUs = 5.0 * 30.1 / 16.1;

struct PctTimes {
  uint64_t sync_one_way = 0;
  uint64_t async_send = 0;
};

PctTimes Measure() {
  PctTimes times;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 128, .name = "t6"});
  aegis::Aegis kernel(machine);
  aegis::EnvId server_id = aegis::kNoEnv;
  cap::Capability server_cap;

  aegis::EnvSpec server;
  server.handlers.pct_sync = [](const aegis::PctArgs& args) { return args; };
  server.handlers.pct_async = [](const aegis::PctArgs&) {};
  server.entry = [&] { kernel.SysBlock(); };

  aegis::EnvSpec client;
  client.entry = [&] {
    kernel.SysYield(server_id);  // Let the server block.
    aegis::PctArgs args;
    args.regs[0] = 1;
    uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)kernel.SysPctCall(server_id, args);
    }
    times.sync_one_way = (machine.clock().now() - t0) / (2 * kIters);

    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)kernel.SysPctSend(server_id, args);
    }
    times.async_send = (machine.clock().now() - t0) / kIters;
    (void)kernel.SysWake(server_id, server_cap);
  };
  auto gs = kernel.CreateEnv(std::move(server));
  server_id = gs->env;
  server_cap = gs->cap;
  (void)kernel.CreateEnv(std::move(client));
  kernel.Run();
  return times;
}

void PrintPaperTables() {
  const PctTimes times = Measure();
  Table table("Table 6: protected control transfer (us, simulated)", {"system", "one-way"});
  table.AddRow({"Aegis PCT (sync)", FmtUs(Us(times.sync_one_way))});
  table.AddRow({"Aegis PCT (async enqueue)", FmtUs(Us(times.async_send))});
  table.AddRow({"L3 (published, SPECint92-scaled)", FmtUs(kL3ScaledUs)});
  table.Print();
  std::printf("Paper shape check: Aegis PCT well under the scaled L3 figure\n"
              "(the paper reports ~7x; ratio here: %.1fx).\n",
              kL3ScaledUs / Us(times.sync_one_way));
}

void BM_PctSyncCall(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure().sync_one_way);
  }
  state.counters["sim_us"] = Us(Measure().sync_one_way);
}
BENCHMARK(BM_PctSyncCall)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
