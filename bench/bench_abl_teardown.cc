// Ablation: crash-safe teardown cost. KillEnv walks every resource table
// (slice vector, filter bindings, in-flight DMA, extents, pages with
// per-page binding flushes, framebuffer tags), so its cost scales with the
// victim's footprint — the price of guaranteeing zero leaked resources no
// matter when an environment dies. Measured against the victim's page
// count; the paper's abort protocol (§3.5) is the same machinery aimed at
// a single unresponsive environment.
#include <vector>

#include "bench/bench_util.h"
#include "src/hw/disk.h"

namespace xok::bench {
namespace {

uint64_t MeasureKillCycles(uint32_t pages_held) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 2048, .name = "teardown"});
  aegis::Aegis kernel(machine);
  hw::Disk disk(machine, 64);
  kernel.AttachDisk(&disk);
  bool ready = false;
  aegis::EnvId victim_id = aegis::kNoEnv;
  uint64_t cycles = 0;

  aegis::EnvSpec victim;
  victim.entry = [&] {
    for (uint32_t i = 0; i < pages_held; ++i) {
      Result<aegis::PageGrant> grant = kernel.SysAllocPage();
      if (!grant.ok()) {
        break;
      }
      if (i < 8) {  // A handful of live TLB bindings to break.
        (void)kernel.SysTlbWrite(0x100000 + i * hw::kPageBytes, grant->page, true, grant->cap);
      }
    }
    (void)kernel.SysAllocDiskExtent(8);
    ready = true;
    kernel.SysBlock();  // Dies here.
  };
  aegis::EnvSpec killer;
  killer.entry = [&] {
    while (!ready) {
      kernel.SysYield();
    }
    const uint64_t t0 = machine.clock().now();
    (void)kernel.KillEnv(victim_id);
    cycles = machine.clock().now() - t0;
  };
  Result<aegis::EnvGrant> gv = kernel.CreateEnv(std::move(victim));
  if (!gv.ok()) {
    std::fprintf(stderr, "bench: CreateEnv failed\n");
    std::abort();
  }
  victim_id = gv->env;
  (void)kernel.CreateEnv(std::move(killer));
  kernel.Run();
  return cycles;
}

void PrintPaperTables() {
  Table table("Forced teardown (KillEnv): cost vs victim footprint",
              {"pages held", "teardown us"});
  for (uint32_t pages : {0u, 16u, 64u, 256u}) {
    table.AddRow({std::to_string(pages), FmtUs(Us(MeasureKillCycles(pages)))});
  }
  table.Print();
}

void BM_KillEnv(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  uint64_t cycles = 0;
  for (auto _ : state) {
    cycles = MeasureKillCycles(pages);
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["sim_us"] = Us(cycles);
}
BENCHMARK(BM_KillEnv)->Arg(0)->Arg(64)->Arg(256);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
