// Per-request critical-path attribution on the e2e server workload: the
// observability ablation. One seeded HTTP/KV run is served twice —
// tracing disarmed (the baseline every other bench measures) and armed
// (kernel ring bound, demux tags, worker stage marks, client send/ack
// marks) — and the armed run's records are joined by src/exos/reqtrace
// into per-request span timelines: wire -> ring-wait -> parse -> store ->
// tx -> ack.
//
// Two printed contracts gate CI (non-zero exit on violation):
//   * armed overhead <= 10% of disarmed throughput — watching the system
//     must not change what you are watching by more than the PR 4 bound;
//   * attribution >= 90% of measured first-send->ack latency at p50 — the
//     stage spans must actually account for where the time went, not just
//     decorate it. (By construction complete timelines telescope to
//     exactly ack - send; the slack is requests whose timelines lost a
//     boundary plus the mark syscalls at either end.)
//
// The disarmed run IS the seed configuration byte for byte: tracing off
// means no ring exists, the kernel's Trace() hook is one nullptr branch,
// and SysTraceMark is never called — so the disarmed table here matches
// bench_e2e_server's PUT-mix numbers by construction, not by luck.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/exos/reqtrace.h"
#include "src/exos/server/loadgen.h"
#include "src/exos/server/server.h"
#include "src/hw/disk.h"
#include "src/net/wire.h"

namespace xok::bench {
namespace {

using exos::reqtrace::Class;
using exos::reqtrace::Collector;
using exos::reqtrace::RequestTimeline;
using exos::reqtrace::Span;
using exos::server::KvServer;
using exos::server::KvServerConfig;
using exos::server::LatencySummary;
using exos::server::LoadGenTarget;
using exos::server::LoadKeyName;
using exos::server::LoadStats;
using exos::server::MakePreload;
using exos::server::SummarizeLatencies;
using exos::server::WorkloadConfig;

constexpr uint32_t kRequests = 400;
constexpr uint32_t kKeys = 16;
constexpr uint32_t kValueBytes = 64;
constexpr uint64_t kSeed = 7;
constexpr uint16_t kServerPort = 7080;
constexpr uint16_t kClientPort = 7999;
constexpr uint32_t kWindow = 4;
constexpr uint32_t kPutPerMille = 200;  // Journal + disk spans need PUTs.
// SLO budget: 1 ms simulated. GETs clear it comfortably; PUTs that eat a
// journal sync (10 ms disk access) miss it — so good and late are both
// populated and the late-attribution table has something to explain.
constexpr uint64_t kSloCycles = 25'000;

uint64_t LoopResolve(uint32_t) { return 0xa; }

struct RunOut {
  LoadStats stats;
  uint64_t trace_mark_failures = 0;
};

RunOut Run(bool armed) {
  hw::Machine machine(
      hw::Machine::Config{.phys_pages = 4096, .name = "reqtrace", .cpus = 2});
  aegis::Aegis kernel(machine, aegis::Aegis::Config{.max_envs = 200});
  hw::Nic nic(machine, 0xa);
  hw::Disk disk(machine, 1024);
  kernel.AttachNic(&nic);
  kernel.AttachDisk(&disk);

  KvServerConfig config;
  config.iface = exos::NetIface{0xa, 1, LoopResolve};
  config.port = kServerPort;
  config.workers = 2;
  config.use_rings = true;
  config.use_ash = true;
  config.hot_keys = {LoadKeyName(0)};
  config.ash_peer_ip = 2;
  config.ash_peer_port = kClientPort;
  config.journal_blocks = exos::LibFs::kDefaultJournalBlocks;
  config.preload = MakePreload(kKeys, kValueBytes);
  config.stride_slices_per_cpu = 400;
  config.trace_requests = armed;
  KvServer server(kernel, config);
  if (!server.ok()) {
    std::abort();
  }

  WorkloadConfig workload;
  workload.seed = kSeed;
  workload.requests = kRequests;
  workload.keys = kKeys;
  workload.value_bytes = kValueBytes;
  workload.put_per_mille = kPutPerMille;
  workload.window = kWindow;
  workload.client_port = kClientPort;
  workload.trace = armed;
  workload.slo_cycles = kSloCycles;
  LoadGenTarget target;
  target.iface = exos::NetIface{0xa, 2, LoopResolve};
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = config.workers;
  target.hot_key = LoadKeyName(0);

  RunOut out;
  exos::Process client(kernel, [&](exos::Process& p) {
    out.stats = RunLoadGen(p, target, workload);
  });
  if (!client.ok()) {
    std::abort();
  }
  kernel.Run();

  if (out.stats.gave_up != 0 || out.stats.corrupt != 0 ||
      out.stats.deadline_hit != 0) {
    std::fprintf(stderr,
                 "reqtrace run unhealthy: gave_up=%llu corrupt=%llu deadline=%llu\n",
                 static_cast<unsigned long long>(out.stats.gave_up),
                 static_cast<unsigned long long>(out.stats.corrupt),
                 static_cast<unsigned long long>(out.stats.deadline_hit));
    std::abort();
  }
  for (uint32_t shard = 0; shard < config.workers; ++shard) {
    out.trace_mark_failures += server.worker_stats(shard).trace_mark_failures;
  }
  return out;
}

std::string FmtCount(uint64_t n) { return std::to_string(n); }

std::string FmtP(const LatencySummary& s, uint64_t LatencySummary::* field) {
  if (s.count == 0) {
    return "-";
  }
  if (s.samples_insufficient &&
      (field == &LatencySummary::p99 || field == &LatencySummary::p999)) {
    return "(n<100)";
  }
  return FmtUs(Us(s.*field));
}

void PrintPaperTables() {
  const RunOut disarmed = Run(/*armed=*/false);
  const RunOut armed = Run(/*armed=*/true);
  const LoadStats& off = disarmed.stats;
  const LoadStats& on = armed.stats;

  // --- Headline: what did watching cost? ---
  Table head("Per-request tracing on the e2e server workload (2 CPUs, 20% PUT, "
             "journal on)",
             {"tracing", "RPS", "p50", "p99", "acked", "timelines", "mark-fails"});
  head.AddRow({"disarmed", std::to_string(static_cast<uint64_t>(off.Rps())),
               FmtP(off.latency, &LatencySummary::p50),
               FmtP(off.latency, &LatencySummary::p99), FmtCount(off.acked), "-",
               FmtCount(disarmed.trace_mark_failures)});
  head.AddRow({"armed", std::to_string(static_cast<uint64_t>(on.Rps())),
               FmtP(on.latency, &LatencySummary::p50),
               FmtP(on.latency, &LatencySummary::p99), FmtCount(on.acked),
               FmtCount(on.reqs.timelines), FmtCount(armed.trace_mark_failures)});
  head.Print();

  // --- Per-stage breakdown (all requests) ---
  Table stage("Critical-path stage latency, armed run (all requests)",
              {"stage", "n", "p50", "p99", "p999", "max"});
  for (uint32_t s = 0; s < exos::reqtrace::kSpanCount; ++s) {
    const LatencySummary& sum = on.reqs.span[s];
    stage.AddRow({exos::reqtrace::SpanName(static_cast<Span>(s)),
                  FmtCount(sum.count), FmtP(sum, &LatencySummary::p50),
                  FmtP(sum, &LatencySummary::p99),
                  FmtP(sum, &LatencySummary::p999), FmtP(sum, &LatencySummary::max)});
  }
  stage.AddRow({"covered (sum)", FmtCount(on.reqs.covered.count),
                FmtP(on.reqs.covered, &LatencySummary::p50),
                FmtP(on.reqs.covered, &LatencySummary::p99),
                FmtP(on.reqs.covered, &LatencySummary::p999),
                FmtP(on.reqs.covered, &LatencySummary::max)});
  stage.AddRow({"send->ack (measured)", FmtCount(on.latency.count),
                FmtP(on.latency, &LatencySummary::p50),
                FmtP(on.latency, &LatencySummary::p99),
                FmtP(on.latency, &LatencySummary::p999),
                FmtP(on.latency, &LatencySummary::max)});
  stage.Print();

  // --- Per-class breakdown: same records, sliced by request class ---
  Collector collector(Collector::Options{.keep_last = 32, .keep_all = true});
  collector.AddAll(on.trace_records);
  Table cls("Stage p50 by request class (cycles joined per class)",
            {"class", "n", "covered p50", "ring-wait p50", "store p50", "tx p50"});
  for (uint32_t c = 0; c < exos::reqtrace::kClassCount; ++c) {
    const Class cl = static_cast<Class>(c);
    if (collector.completed(cl) == 0) {
      continue;
    }
    auto p50_of = [&](Span s) {
      std::vector<uint64_t> v = collector.samples(cl, s);
      if (v.empty()) {
        return std::string("-");
      }
      std::sort(v.begin(), v.end());
      return FmtUs(Us(exos::reqtrace::Percentile(v, 500)));
    };
    std::vector<uint64_t> cov = collector.covered(cl);
    std::sort(cov.begin(), cov.end());
    cls.AddRow({exos::reqtrace::ClassName(cl),
                FmtCount(collector.completed(cl)),
                FmtUs(Us(exos::reqtrace::Percentile(cov, 500))),
                p50_of(Span::kRingWait), p50_of(Span::kStore), p50_of(Span::kTx)});
  }
  cls.Print();

  // --- SLO accounting + late attribution ---
  Table slo("SLO accounting (budget 1000 us first-send->ack)",
            {"bucket", "requests", "store p99 (late only)", "ring-wait p99 (late only)"});
  const LatencySummary& late_store =
      on.slo.late_span[static_cast<uint32_t>(Span::kStore)];
  const LatencySummary& late_rwait =
      on.slo.late_span[static_cast<uint32_t>(Span::kRingWait)];
  slo.AddRow({"good", FmtCount(on.slo.good), "-", "-"});
  slo.AddRow({"late", FmtCount(on.slo.late), FmtP(late_store, &LatencySummary::p99),
              FmtP(late_rwait, &LatencySummary::p99)});
  slo.AddRow({"shed", FmtCount(on.slo.shed), "-", "-"});
  slo.Print();

  // --- Flight recorder: the slowest complete request, span by span ---
  const RequestTimeline* slowest = nullptr;
  for (const RequestTimeline& t : collector.all()) {
    if (slowest == nullptr || t.Total() > slowest->Total()) {
      slowest = &t;
    }
  }
  if (slowest != nullptr) {
    std::printf("Slowest request's critical path:\n%s",
                exos::reqtrace::FormatTimeline(*slowest).c_str());
  }

  // --- Contracts ---
  const double overhead_pct =
      off.Rps() > 0.0 ? (off.Rps() - on.Rps()) * 100.0 / off.Rps() : 100.0;
  const double attribution_pct =
      on.latency.p50 > 0
          ? static_cast<double>(on.reqs.covered.p50) * 100.0 /
                static_cast<double>(on.latency.p50)
          : 0.0;
  std::printf("Armed overhead: %.1f%% of disarmed RPS (contract: <= 10%%) — %s\n",
              overhead_pct, overhead_pct <= 10.0 ? "contract holds" : "VIOLATION");
  std::printf(
      "Attribution: stage spans cover %.1f%% of measured send->ack p50 "
      "(contract: >= 90%%) — %s\n",
      attribution_pct, attribution_pct >= 90.0 ? "contract holds" : "VIOLATION");
  std::printf("Trace-mark failures: %llu (contract: 0)\n",
              static_cast<unsigned long long>(armed.trace_mark_failures));
  if (overhead_pct > 10.0 || attribution_pct < 90.0 ||
      armed.trace_mark_failures != 0) {
    std::fprintf(stderr, "reqtrace contract violated\n");
    std::abort();
  }
}

void BM_ReqtraceArmed(benchmark::State& state) {
  RunOut out;
  for (auto _ : state) {
    out = Run(/*armed=*/true);
  }
  state.counters["rps"] = out.stats.Rps();
  state.counters["p50_us"] = Us(out.stats.latency.p50);
  state.counters["covered_p50_us"] = Us(out.stats.reqs.covered.p50);
  state.counters["timelines"] = static_cast<double>(out.stats.reqs.timelines);
  state.counters["slo_good"] = static_cast<double>(out.stats.slo.good);
  state.counters["slo_late"] = static_cast<double>(out.stats.slo.late);
  state.counters["disk_ios"] = static_cast<double>(out.stats.reqs.disk_ios);
  state.counters["wire_p50_us"] =
      Us(out.stats.reqs.span[static_cast<uint32_t>(Span::kWire)].p50);
  state.counters["ringwait_p50_us"] =
      Us(out.stats.reqs.span[static_cast<uint32_t>(Span::kRingWait)].p50);
  state.counters["store_p50_us"] =
      Us(out.stats.reqs.span[static_cast<uint32_t>(Span::kStore)].p50);
}
BENCHMARK(BM_ReqtraceArmed)->Unit(benchmark::kMillisecond);

void BM_ReqtraceDisarmed(benchmark::State& state) {
  RunOut out;
  for (auto _ : state) {
    out = Run(/*armed=*/false);
  }
  state.counters["rps"] = out.stats.Rps();
  state.counters["p50_us"] = Us(out.stats.latency.p50);
}
BENCHMARK(BM_ReqtraceDisarmed)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
