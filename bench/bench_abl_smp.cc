// Ablation: SMP Aegis — what N CPUs buy, and what shootdown costs.
//
// Three measurements on the simulated multi-processor DECstation:
//
//   1. Aggregate null-syscall throughput at cpus = 1, 2, 4, 8: one
//      environment pinned per CPU, each hammering SysNull. Syscalls
//      enter the kernel on the CPU that raised them and touch no shared
//      hardware, so throughput must scale essentially linearly (the
//      bench aborts if 4 CPUs deliver less than 3x one CPU).
//
//   2. Packet receive rate with busy siblings: the receiver owns the
//      demux filter on CPU 0 while three compute-bound environments
//      churn. On one CPU they time-share the receiver's cycles; on four
//      CPUs they are pinned elsewhere and the receive path runs
//      uncontended.
//
//   3. TLB shootdown cost vs how many remote CPUs hold the dying
//      translation: SysDeallocPage pays kIpiCost per remote round plus
//      kIpiRemoteInvalidate per zapped entry, all billed to the
//      initiator (visible revocation: the one who frees pays).
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "src/dpf/tcpip_filters.h"
#include "src/hw/nic.h"
#include "src/net/wire.h"

namespace xok::bench {
namespace {

// --- 1. Null-syscall throughput vs CPU count ---

constexpr int kCallsPerEnv = 2000;

struct Throughput {
  uint64_t calls = 0;
  uint64_t elapsed_cycles = 0;  // Max over CPUs: the machine is done when
                                // its slowest CPU is.
  double calls_per_sec = 0.0;
};

Throughput MeasureNullThroughput(uint32_t cpus) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "smp", .cpus = cpus});
  aegis::Aegis kernel(machine);
  for (uint32_t k = 0; k < cpus; ++k) {
    aegis::EnvSpec spec;
    spec.cpu_mask = 1ULL << k;
    spec.entry = [&kernel] {
      for (int i = 0; i < kCallsPerEnv; ++i) {
        kernel.SysNull();
      }
    };
    if (!kernel.CreateEnv(std::move(spec)).ok()) {
      std::abort();
    }
  }
  kernel.Run();
  Throughput result;
  result.calls = static_cast<uint64_t>(cpus) * kCallsPerEnv;
  result.elapsed_cycles = machine.MaxCpuCycle();
  result.calls_per_sec = static_cast<double>(result.calls) /
                         (static_cast<double>(result.elapsed_cycles) / hw::kClockHz);
  return result;
}

// --- 2. Packet receive rate with busy siblings ---

constexpr uint16_t kPort = 200;
constexpr int kBursts = 32;
constexpr int kBurst = 8;
constexpr int kComputeEnvs = 3;

double MeasurePacketRate(uint32_t cpus) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 128, .name = "smprx", .cpus = cpus});
  aegis::Aegis kernel(machine);
  hw::Wire wire;
  hw::Nic nic(machine, 0xb);
  wire.Attach(&nic);
  kernel.AttachNic(&nic);

  bool rx_done = false;
  double pkts_per_sec = 0.0;

  // Receiver on CPU 0 (device interrupts land there).
  aegis::EnvSpec rx;
  rx.cpu_mask = 1ULL << 0;
  rx.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel.SysBindFilter(std::move(fspec), cap::Capability{});
    if (!id.ok()) {
      std::abort();
    }
    const std::vector<uint8_t> payload = {7, 0, 0, 0};
    const std::vector<uint8_t> frame =
        net::BuildUdpFrame(0xb, 0xa, 1, 2, 100, kPort, payload);
    uint64_t consumed = 0;
    const uint64_t t0 = machine.clock().now();
    for (int burst = 0; burst < kBursts; ++burst) {
      for (int i = 0; i < kBurst; ++i) {
        nic.InjectRx(frame);
      }
      kernel.SysNull();  // Charge boundary: the rx interrupt drains the NIC.
      for (int i = 0; i < kBurst; ++i) {
        Result<std::vector<uint8_t>> got = kernel.SysRecvPacket(*id);
        if (got.ok()) {
          ++consumed;
        }
      }
    }
    const uint64_t total = machine.clock().now() - t0;
    if (consumed != static_cast<uint64_t>(kBursts) * kBurst) {
      std::abort();  // Every frame must actually be consumed.
    }
    pkts_per_sec = static_cast<double>(consumed) /
                   (static_cast<double>(total) / hw::kClockHz);
    rx_done = true;
  };
  if (!kernel.CreateEnv(std::move(rx)).ok()) {
    std::abort();
  }

  // Compute-bound siblings: on one CPU they steal the receiver's slices;
  // on four they are pinned to CPUs 1..3 and never touch CPU 0.
  for (int c = 0; c < kComputeEnvs; ++c) {
    aegis::EnvSpec spec;
    spec.cpu_mask = cpus == 1 ? 1ULL : (1ULL << (1 + c % (cpus - 1)));
    spec.entry = [&] {
      while (!rx_done) {
        machine.Charge(hw::Instr(500));
      }
    };
    if (!kernel.CreateEnv(std::move(spec)).ok()) {
      std::abort();
    }
  }
  kernel.Run();
  return pkts_per_sec;
}

// --- 3. Shootdown cost vs mapped-CPU count ---

constexpr hw::Vaddr kProbeVa = 0x40000;

uint64_t MeasureShootdown(uint32_t remote_mappers) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 64, .name = "smptlb", .cpus = 4});
  aegis::Aegis kernel(machine);

  hw::PageId page = 0;
  cap::Capability page_cap;
  bool allocated = false;
  uint32_t mapped = 0;
  bool revoked = false;
  uint64_t dealloc_cycles = 0;

  // Mappers: each pins one remote CPU, installs the shared translation,
  // and touches it so the hardware entry is live when the axe falls.
  for (uint32_t m = 0; m < remote_mappers; ++m) {
    aegis::EnvSpec spec;
    spec.cpu_mask = 1ULL << (1 + m);
    spec.handlers.exception = [](const hw::TrapFrame&) { return aegis::ExcAction::kSkip; };
    spec.entry = [&] {
      while (!allocated) {
        kernel.SysYield();
      }
      if (kernel.SysTlbWrite(kProbeVa, page, true, page_cap) != Status::kOk) {
        std::abort();
      }
      (void)machine.LoadWord(kProbeVa);
      ++mapped;
      while (!revoked) {
        kernel.SysYield();
      }
    };
    if (!kernel.CreateEnv(std::move(spec)).ok()) {
      std::abort();
    }
  }

  // Initiator on CPU 0: allocates, waits for every mapper, then pays for
  // the revocation — including every remote CPU's invalidate.
  aegis::EnvSpec init;
  init.cpu_mask = 1ULL << 0;
  init.entry = [&] {
    Result<aegis::PageGrant> grant = kernel.SysAllocPage();
    if (!grant.ok()) {
      std::abort();
    }
    page = grant->page;
    page_cap = grant->cap;
    allocated = true;
    while (mapped < remote_mappers) {
      kernel.SysYield();
    }
    const uint64_t t0 = machine.clock().now();
    if (kernel.SysDeallocPage(page, page_cap) != Status::kOk) {
      std::abort();
    }
    dealloc_cycles = machine.clock().now() - t0;
    revoked = true;
  };
  if (!kernel.CreateEnv(std::move(init)).ok()) {
    std::abort();
  }
  kernel.Run();
  return dealloc_cycles;
}

std::string FmtRate(double per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0fk/s", per_sec / 1000.0);
  return buf;
}

void PrintPaperTables() {
  const Throughput t1 = MeasureNullThroughput(1);
  const Throughput t2 = MeasureNullThroughput(2);
  const Throughput t4 = MeasureNullThroughput(4);
  const Throughput t8 = MeasureNullThroughput(8);
  Table scaling("Ablation: SMP null-syscall throughput (one pinned env per CPU)",
                {"cpus", "calls", "elapsed us", "calls/sec", "vs 1 cpu"});
  const Throughput* rows[] = {&t1, &t2, &t4, &t8};
  const char* labels[] = {"1", "2", "4", "8"};
  for (int i = 0; i < 4; ++i) {
    scaling.AddRow({labels[i], std::to_string(rows[i]->calls),
                    FmtUs(Us(rows[i]->elapsed_cycles)), FmtRate(rows[i]->calls_per_sec),
                    FmtX(rows[i]->calls_per_sec / t1.calls_per_sec)});
  }
  scaling.Print();
  if (t4.calls_per_sec < 3.0 * t1.calls_per_sec) {
    std::fprintf(stderr, "FAIL: 4 CPUs delivered <3x one CPU's syscall throughput\n");
    std::abort();
  }

  const double rx1 = MeasurePacketRate(1);
  const double rx4 = MeasurePacketRate(4);
  Table rx("Ablation: packet receive rate with 3 compute-bound siblings",
           {"cpus", "pkts/sec", "vs 1 cpu"});
  rx.AddRow({"1", FmtRate(rx1), "1.0x"});
  rx.AddRow({"4", FmtRate(rx4), FmtX(rx4 / rx1)});
  rx.Print();

  Table shoot("Ablation: TLB shootdown cost vs remote CPUs holding the entry",
              {"remote cpus", "dealloc cycles", "dealloc us"});
  for (uint32_t remote = 0; remote <= 3; ++remote) {
    const uint64_t cycles = MeasureShootdown(remote);
    shoot.AddRow({std::to_string(remote), std::to_string(cycles), FmtUs(Us(cycles))});
  }
  shoot.Print();
  std::printf("Syscalls scale with CPUs because each enters the kernel locally;\n"
              "revocation does not: every remote CPU holding the translation adds\n"
              "an IPI round and a per-entry invalidate, billed to the initiator.\n");
}

void BM_SmpNull1Cpu(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureNullThroughput(1));
  }
  state.counters["sim_calls_per_sec"] = MeasureNullThroughput(1).calls_per_sec;
}
BENCHMARK(BM_SmpNull1Cpu)->Unit(benchmark::kMillisecond);

void BM_SmpNull4Cpu(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureNullThroughput(4));
  }
  state.counters["sim_calls_per_sec"] = MeasureNullThroughput(4).calls_per_sec;
}
BENCHMARK(BM_SmpNull4Cpu)->Unit(benchmark::kMillisecond);

void BM_SmpShootdown3Remote(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureShootdown(3));
  }
  state.counters["sim_us"] = Us(MeasureShootdown(3));
}
BENCHMARK(BM_SmpShootdown3Remote)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
