// Ablation: what does observability cost? The xtrace hooks are compiled
// into every syscall, so the interesting numbers are (a) a disarmed hook —
// a branch on a nullptr ring, which must cost *zero* simulated cycles so
// the paper tables elsewhere in this repo are unchanged — and (b) an armed
// ring, which charges kTraceArmedSyscall per traced syscall (the record
// stores themselves sink into the R3000 write buffer). The acceptance
// bound is < 10% on the worst case, SysNull, the shortest syscall there is.
#include "bench/bench_util.h"

namespace xok::bench {
namespace {

constexpr int kIters = 10'000;
constexpr uint32_t kRingPages = 8;

// Arms the trace ring with `mask` from inside the boot environment (fresh
// machine: kAnyPage allocations come back contiguous from frame 0). The
// ring is a global resource and this bench measures its cost, so it must
// own the analyser outright: kick out the harness's --xok_trace ring if
// one is armed.
std::vector<aegis::PageGrant> Arm(aegis::Aegis& kernel, uint32_t mask) {
  (void)kernel.SysUnbindTraceRing();
  std::vector<aegis::PageGrant> pages;
  for (uint32_t i = 0; i < kRingPages; ++i) {
    pages.push_back(*kernel.SysAllocPage(aegis::kAnyPage));
  }
  aegis::TraceRingSpec spec;
  spec.first_page = pages.front().page;
  spec.pages = kRingPages;
  spec.mask = mask;
  if (kernel.SysBindTraceRing(spec, pages.front().cap) != Status::kOk) {
    std::fprintf(stderr, "bench_abl_trace: bind failed\n");
    std::abort();
  }
  return pages;
}

uint64_t MeasureSysNull(aegis::Aegis& kernel, hw::Machine& machine) {
  const uint64_t t0 = machine.clock().now();
  for (int i = 0; i < kIters; ++i) {
    kernel.SysNull();
  }
  return (machine.clock().now() - t0) / kIters;
}

struct Numbers {
  uint64_t disarmed = 0;
  uint64_t armed_all = 0;
  uint64_t armed_lifecycle = 0;  // Syscall events masked out at bind time.
  uint64_t ring_records = 0;
  uint64_t ring_dropped = 0;
  uint64_t hist_count = 0;
  double hist_mean = 0;
};

Numbers Collect() {
  Numbers numbers;
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    (void)kernel.SysUnbindTraceRing();  // "Disarmed" must mean disarmed.
    numbers.disarmed = MeasureSysNull(kernel, machine);
  });
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    std::vector<aegis::PageGrant> pages = Arm(kernel, xtrace::kMaskAll);
    numbers.armed_all = MeasureSysNull(kernel, machine);
    std::span<uint8_t> region = machine.mem().RangeSpan(pages.front().page, kRingPages);
    Result<xtrace::TraceRingView> view = xtrace::TraceRingView::AttachExisting(region);
    numbers.ring_records = view->head();
    numbers.ring_dropped = view->dropped();
    Result<xtrace::LatencyHist> hist =
        kernel.SysSyscallHist(static_cast<uint32_t>(xtrace::Sys::kNull));
    numbers.hist_count = hist->count;
    numbers.hist_mean =
        hist->count > 0 ? static_cast<double>(hist->total_cycles) / hist->count : 0;
  });
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    (void)Arm(kernel, xtrace::kMaskEnvLifecycle);
    numbers.armed_lifecycle = MeasureSysNull(kernel, machine);
  });
  return numbers;
}

void PrintPaperTables() {
  const Numbers numbers = Collect();
  const double overhead_all =
      100.0 * (static_cast<double>(numbers.armed_all) - numbers.disarmed) / numbers.disarmed;
  const double overhead_lifecycle =
      100.0 * (static_cast<double>(numbers.armed_lifecycle) - numbers.disarmed) /
      numbers.disarmed;
  char pct[32];

  Table table("Ablation: xtrace cost on SysNull (simulated cycles/call)",
              {"ring state", "cycles", "us", "overhead"});
  table.AddRow({"disarmed", std::to_string(numbers.disarmed), FmtUs(Us(numbers.disarmed)), "-"});
  std::snprintf(pct, sizeof(pct), "%.1f%%", overhead_all);
  table.AddRow({"armed (all events)", std::to_string(numbers.armed_all),
                FmtUs(Us(numbers.armed_all)), pct});
  std::snprintf(pct, sizeof(pct), "%.1f%%", overhead_lifecycle);
  table.AddRow({"armed (lifecycle mask)", std::to_string(numbers.armed_lifecycle),
                FmtUs(Us(numbers.armed_lifecycle)), pct});
  table.Print();

  std::printf("armed ring wrote %llu records (%llu overwritten, drop-oldest); "
              "SysNull histogram: %llu samples, mean %.1f cycles\n",
              static_cast<unsigned long long>(numbers.ring_records),
              static_cast<unsigned long long>(numbers.ring_dropped),
              static_cast<unsigned long long>(numbers.hist_count), numbers.hist_mean);
  std::printf("acceptance: armed overhead %.1f%% %s 10%% bound\n", overhead_all,
              overhead_all < 10.0 ? "within" : "EXCEEDS");
}

void BM_SysNullDisarmed(benchmark::State& state) {
  uint64_t sim = 0;
  uint64_t n = 0;
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    (void)kernel.SysUnbindTraceRing();  // "Disarmed" must mean disarmed.
    const uint64_t t0 = machine.clock().now();
    for (auto _ : state) {
      kernel.SysNull();
      ++n;
    }
    sim = machine.clock().now() - t0;
  });
  state.counters["sim_us"] = n > 0 ? Us(sim) / static_cast<double>(n) : 0;
}
BENCHMARK(BM_SysNullDisarmed);

void BM_SysNullArmed(benchmark::State& state) {
  uint64_t sim = 0;
  uint64_t n = 0;
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    (void)Arm(kernel, xtrace::kMaskAll);
    const uint64_t t0 = machine.clock().now();
    for (auto _ : state) {
      kernel.SysNull();
      ++n;
    }
    sim = machine.clock().now() - t0;
  });
  state.counters["sim_us"] = n > 0 ? Us(sim) / static_cast<double>(n) : 0;
}
BENCHMARK(BM_SysNullArmed);

void BM_EnvStats(benchmark::State& state) {
  uint64_t sim = 0;
  uint64_t n = 0;
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    const uint64_t t0 = machine.clock().now();
    for (auto _ : state) {
      benchmark::DoNotOptimize(kernel.SysEnvStats(kernel.SysSelf()));
      ++n;
    }
    sim = machine.clock().now() - t0;
  });
  state.counters["sim_us"] = n > 0 ? Us(sim) / static_cast<double>(n) : 0;
}
BENCHMARK(BM_EnvStats);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
