// Table 10: the Appel–Li virtual-memory primitives, ExOS vs Ultrix:
//   dirty     — query whether a page is dirty
//   prot1     — read-protect one page
//   prot100   — read-protect 100 pages
//   unprot100 — remove protections on 100 pages
//   trap      — handle a page-protection trap
//   appel1    — prot1 + trap + unprot, random page (paper's description)
//   appel2    — protect 100, access each randomly, unprot in handler
#include <algorithm>
#include <numeric>

#include "bench/bench_util.h"
#include "src/base/rand.h"
#include "src/exos/ipc.h"

namespace xok::bench {
namespace {

constexpr int kPages = 100;
constexpr hw::Vaddr kBase = 0x1000000;
constexpr int kIters = 200;

hw::Vaddr PageVa(int i) { return kBase + static_cast<hw::Vaddr>(i) * hw::kPageBytes; }

struct Row {
  uint64_t dirty = 0;
  uint64_t prot1 = 0;
  uint64_t prot100 = 0;
  uint64_t unprot100 = 0;
  uint64_t trap = 0;
  uint64_t appel1 = 0;
  uint64_t appel2 = 0;
};

std::vector<int> RandomOrder(uint64_t seed) {
  std::vector<int> order(kPages);
  std::iota(order.begin(), order.end(), 0);
  SplitMix64 rng(seed);
  for (int i = kPages - 1; i > 0; --i) {
    std::swap(order[i], order[rng.NextBelow(static_cast<uint64_t>(i) + 1)]);
  }
  return order;
}

Row MeasureExos() {
  Row row;
  RunOnExos([&](exos::Process& p) {
    hw::Machine& machine = p.machine();
    exos::Vm& vm = p.vm();
    for (int i = 0; i < kPages; ++i) {
      (void)machine.StoreWord(PageVa(i), i);  // Fault in, dirty.
    }

    // dirty.
    SplitMix64 rng(1);
    uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(vm.Dirty(PageVa(static_cast<int>(rng.NextBelow(kPages)))));
    }
    row.dirty = (machine.clock().now() - t0) / kIters;

    // prot1 / unprot1 pairs (measure the protect half).
    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)vm.Protect(PageVa(i % kPages), 1, exos::kProtNone);
      (void)vm.Protect(PageVa(i % kPages), 1, exos::kProtWrite);
    }
    row.prot1 = (machine.clock().now() - t0) / (2 * kIters);

    // prot100 / unprot100.
    t0 = machine.clock().now();
    (void)vm.Protect(kBase, kPages, exos::kProtNone);
    row.prot100 = machine.clock().now() - t0;
    t0 = machine.clock().now();
    (void)vm.Protect(kBase, kPages, exos::kProtWrite);
    row.unprot100 = machine.clock().now() - t0;

    // trap: protection fault to a user handler that unprotects.
    vm.set_trap_handler([&](hw::Vaddr va, bool) {
      return vm.Protect(va & ~hw::kPageMask, 1, exos::kProtWrite) == Status::kOk;
    });
    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)vm.Protect(PageVa(i % kPages), 1, exos::kProtNone);
      (void)machine.LoadWord(PageVa(i % kPages));
    }
    row.trap = (machine.clock().now() - t0) / kIters;

    // appel1: access a random protected page; handler protects another and
    // unprotects the faulting page. Time per access.
    int next_victim = 0;
    vm.set_trap_handler([&](hw::Vaddr va, bool) {
      const int faulting = static_cast<int>((va - kBase) / hw::kPageBytes);
      next_victim = (faulting + 37) % kPages;
      (void)vm.Protect(PageVa(next_victim), 1, exos::kProtNone);
      return vm.Protect(PageVa(faulting), 1, exos::kProtWrite) == Status::kOk;
    });
    (void)vm.Protect(PageVa(0), 1, exos::kProtNone);
    next_victim = 0;
    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)machine.LoadWord(PageVa(next_victim));
    }
    row.appel1 = (machine.clock().now() - t0) / kIters;
    (void)vm.Protect(kBase, kPages, exos::kProtWrite);

    // appel2: protect 100 pages, access each in random order, unprotect in
    // the handler. Time per access (includes 1/100 of the bulk protect).
    vm.set_trap_handler([&](hw::Vaddr va, bool) {
      return vm.Protect(va & ~hw::kPageMask, 1, exos::kProtWrite) == Status::kOk;
    });
    const std::vector<int> order = RandomOrder(2);
    t0 = machine.clock().now();
    (void)vm.Protect(kBase, kPages, exos::kProtNone);
    for (int page : order) {
      (void)machine.LoadWord(PageVa(page));
    }
    row.appel2 = (machine.clock().now() - t0) / kPages;
  });
  return row;
}

Row MeasureUltrix() {
  Row row;
  RunOnUltrix([&](ultrix::Ultrix& kernel, hw::Machine& machine) {
    for (int i = 0; i < kPages; ++i) {
      (void)machine.StoreWord(PageVa(i), i);
    }

    SplitMix64 rng(1);
    uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(
          kernel.SysMincoreDirty(PageVa(static_cast<int>(rng.NextBelow(kPages)))));
    }
    row.dirty = (machine.clock().now() - t0) / kIters;

    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)kernel.SysMprotect(PageVa(i % kPages), 1, ultrix::kProtNone);
      (void)kernel.SysMprotect(PageVa(i % kPages), 1, ultrix::kProtWrite);
    }
    row.prot1 = (machine.clock().now() - t0) / (2 * kIters);

    t0 = machine.clock().now();
    (void)kernel.SysMprotect(kBase, kPages, ultrix::kProtNone);
    row.prot100 = machine.clock().now() - t0;
    t0 = machine.clock().now();
    (void)kernel.SysMprotect(kBase, kPages, ultrix::kProtWrite);
    row.unprot100 = machine.clock().now() - t0;

    kernel.SysSignal([&](hw::Vaddr va, bool) {
      return kernel.SysMprotect(va & ~hw::kPageMask, 1, ultrix::kProtWrite) == Status::kOk;
    });
    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)kernel.SysMprotect(PageVa(i % kPages), 1, ultrix::kProtNone);
      (void)machine.LoadWord(PageVa(i % kPages));
    }
    row.trap = (machine.clock().now() - t0) / kIters;

    int next_victim = 0;
    kernel.SysSignal([&](hw::Vaddr va, bool) {
      const int faulting = static_cast<int>((va - kBase) / hw::kPageBytes);
      next_victim = (faulting + 37) % kPages;
      (void)kernel.SysMprotect(PageVa(next_victim), 1, ultrix::kProtNone);
      return kernel.SysMprotect(PageVa(faulting), 1, ultrix::kProtWrite) == Status::kOk;
    });
    (void)kernel.SysMprotect(PageVa(0), 1, ultrix::kProtNone);
    next_victim = 0;
    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)machine.LoadWord(PageVa(next_victim));
    }
    row.appel1 = (machine.clock().now() - t0) / kIters;
    (void)kernel.SysMprotect(kBase, kPages, ultrix::kProtWrite);

    kernel.SysSignal([&](hw::Vaddr va, bool) {
      return kernel.SysMprotect(va & ~hw::kPageMask, 1, ultrix::kProtWrite) == Status::kOk;
    });
    const std::vector<int> order = RandomOrder(2);
    t0 = machine.clock().now();
    (void)kernel.SysMprotect(kBase, kPages, ultrix::kProtNone);
    for (int page : order) {
      (void)machine.LoadWord(PageVa(page));
    }
    row.appel2 = (machine.clock().now() - t0) / kPages;
  });
  return row;
}

void PrintPaperTables() {
  const Row exos = MeasureExos();
  const Row ultrix = MeasureUltrix();
  Table table("Table 10: Appel-Li VM benchmarks (us, simulated)",
              {"benchmark", "ExOS", "Ultrix", "Ultrix/ExOS"});
  auto add = [&](const char* name, uint64_t a, uint64_t u) {
    table.AddRow({name, FmtUs(Us(a)), FmtUs(Us(u)),
                  a == 0 ? "-" : FmtX(static_cast<double>(u) / a)});
  };
  add("dirty", exos.dirty, ultrix.dirty);
  add("prot1", exos.prot1, ultrix.prot1);
  add("prot100", exos.prot100, ultrix.prot100);
  add("unprot100", exos.unprot100, ultrix.unprot100);
  add("trap", exos.trap, ultrix.trap);
  add("appel1", exos.appel1, ultrix.appel1);
  add("appel2", exos.appel2, ultrix.appel2);
  table.Print();
  std::printf("Paper shape check: ExOS wins every row, 5-40x on the trap-dominated\n"
              "rows; appel2 < appel1 (appel1's handler does both a protect and an\n"
              "unprotect).\n");
}

void BM_Appel1Exos(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureExos().appel1);
  }
  state.counters["sim_us"] = Us(MeasureExos().appel1);
}
BENCHMARK(BM_Appel1Exos)->Unit(benchmark::kMillisecond);

void BM_Appel1Ultrix(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureUltrix().appel1);
  }
  state.counters["sim_us"] = Us(MeasureUltrix().appel1);
}
BENCHMARK(BM_Appel1Ultrix)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
