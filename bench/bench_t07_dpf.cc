// Table 7: message classification with ten TCP/IP filters — DPF (dynamic
// code generation + filter merging) vs MPF-style and PATHFINDER-style
// interpreted engines. As in the paper, the engines run "in user space":
// no kernel is involved; this isolates the classifier.
#include <memory>

#include "bench/bench_util.h"
#include "src/base/rand.h"
#include "src/dpf/dpf.h"
#include "src/dpf/mpf.h"
#include "src/dpf/pathfinder.h"
#include "src/dpf/tcpip_filters.h"

namespace xok::bench {
namespace {

using dpf::ClassifierEngine;

std::vector<uint8_t> TcpPacket(uint16_t src_port, uint16_t dst_port) {
  std::vector<uint8_t> frame(64, 0);
  net::PutBe16(frame, net::kEthTypeOff, net::kEthTypeIpv4);
  frame[net::kIpVersionIhlOff] = 0x45;
  frame[net::kIpProtoOff] = net::kIpProtoTcp;
  net::PutBe32(frame, net::kIpSrcOff, 10);
  net::PutBe32(frame, net::kIpDstOff, 20);
  net::PutBe16(frame, net::kTcpSrcPortOff, src_port);
  net::PutBe16(frame, net::kTcpDstPortOff, dst_port);
  return frame;
}

void InstallTenFilters(ClassifierEngine& engine) {
  for (uint16_t i = 0; i < 10; ++i) {
    if (!engine.Insert(dpf::TcpConnectionFilter(10, 20, 1000 + i, 2000 + i)).ok()) {
      std::abort();
    }
  }
}

// Simulated cost per classification over a deterministic packet mix.
double SimUsPerClassify(ClassifierEngine& engine) {
  SplitMix64 rng(7);
  constexpr int kIters = 10'000;
  const uint64_t before = engine.sim_cycles();
  for (int i = 0; i < kIters; ++i) {
    const uint16_t conn = static_cast<uint16_t>(rng.NextBelow(10));
    auto pkt = TcpPacket(1000 + conn, 2000 + conn);
    benchmark::DoNotOptimize(engine.Classify(pkt));
  }
  return Us(engine.sim_cycles() - before) / kIters;
}

void PrintPaperTables() {
  dpf::MpfEngine mpf;
  dpf::PathfinderEngine pathfinder;
  dpf::DpfEngine dpf_engine;
  InstallTenFilters(mpf);
  InstallTenFilters(pathfinder);
  InstallTenFilters(dpf_engine);

  const double mpf_us = SimUsPerClassify(mpf);
  const double pf_us = SimUsPerClassify(pathfinder);
  const double dpf_us = SimUsPerClassify(dpf_engine);

  Table table("Table 7: 10-filter TCP/IP classification (us, simulated)",
              {"engine", "per packet", "vs DPF"});
  table.AddRow({"MPF (interpreted)", FmtUs(mpf_us), FmtX(mpf_us / dpf_us)});
  table.AddRow({"PATHFINDER (pattern)", FmtUs(pf_us), FmtX(pf_us / dpf_us)});
  table.AddRow({"DPF (compiled+merged)", FmtUs(dpf_us), "1.0x"});
  table.Print();
  std::printf("Paper shape check: DPF ~20x MPF, ~10x PATHFINDER (paper: 35.5/19.0/1.5 us\n"
              "on a DECstation 5000/200).\n");
}

template <typename Engine>
void BM_Classify(benchmark::State& state) {
  Engine engine;
  InstallTenFilters(engine);
  SplitMix64 rng(7);
  std::vector<std::vector<uint8_t>> packets;
  for (int i = 0; i < 64; ++i) {
    const uint16_t conn = static_cast<uint16_t>(rng.NextBelow(10));
    packets.push_back(TcpPacket(1000 + conn, 2000 + conn));
  }
  size_t i = 0;
  const uint64_t sim_before = engine.sim_cycles();
  uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Classify(packets[i++ & 63]));
    ++n;
  }
  state.counters["sim_us"] =
      n > 0 ? Us(engine.sim_cycles() - sim_before) / static_cast<double>(n) : 0;
}
BENCHMARK(BM_Classify<dpf::MpfEngine>)->Name("BM_Classify_MPF");
BENCHMARK(BM_Classify<dpf::PathfinderEngine>)->Name("BM_Classify_PATHFINDER");
BENCHMARK(BM_Classify<dpf::DpfEngine>)->Name("BM_Classify_DPF");

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
