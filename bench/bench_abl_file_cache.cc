// Ablation: application-controlled file caching (paper §2, Cao et al.
// [10]: "application-level control over file caching can reduce
// application running time by 45%"). A query loop repeatedly scans a table
// larger than the block cache. Under the kernel's one-size-fits-all LRU,
// every access misses; the application that knows its own access pattern
// switches the *library* file system to an MRU-style policy and keeps a
// stable subset resident — no kernel change involved.
#include "bench/bench_util.h"
#include "src/exos/fs.h"
#include "src/hw/disk.h"

namespace xok::bench {
namespace {

constexpr uint32_t kTableBlocks = 10;   // File size: 10 blocks (40 KB).
constexpr size_t kCacheSlots = 8;       // Cache smaller than the table.
constexpr int kScans = 10;

struct ScanResult {
  uint64_t cycles = 0;
  uint64_t misses = 0;
  uint64_t hits = 0;
};

enum class CachePolicy { kLru, kScanAware };

ScanResult RunScan(CachePolicy policy) {
  ScanResult result;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "fc"});
  aegis::Aegis kernel(machine);
  hw::Disk disk(machine, 256);
  kernel.AttachDisk(&disk);
  exos::Process proc(kernel, [&](exos::Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel.SysAllocDiskExtent(64);
    if (!extent.ok()) {
      std::abort();
    }
    auto fs = exos::LibFs::Format(p, *extent, kCacheSlots);
    if (!fs.ok()) {
      std::abort();
    }
    Result<exos::FileHandle> table = (*fs)->Create("table");
    std::vector<uint8_t> block(hw::kPageBytes, 0x11);
    for (uint32_t b = 0; b < kTableBlocks; ++b) {
      if ((*fs)->Write(*table, b * hw::kPageBytes, block) != Status::kOk) {
        std::abort();
      }
    }
    (void)(*fs)->Sync();
    if (policy == CachePolicy::kScanAware) {
      // The application knows: pin metadata, evict data MRU-first.
      (*fs)->cache().set_victim_picker(exos::MakeScanAwarePicker(/*metadata_blocks=*/3));
    } else {
      (*fs)->cache().set_policy(exos::BlockCache::Policy::kLru);
    }

    const uint64_t hits0 = (*fs)->cache().hits();
    const uint64_t misses0 = (*fs)->cache().misses();
    const uint64_t t0 = machine.clock().now();
    std::vector<uint8_t> row(hw::kPageBytes);
    for (int scan = 0; scan < kScans; ++scan) {
      for (uint32_t b = 0; b < kTableBlocks; ++b) {
        if (!(*fs)->Read(*table, b * hw::kPageBytes, row).ok()) {
          std::abort();
        }
      }
    }
    result.cycles = machine.clock().now() - t0;
    result.hits = (*fs)->cache().hits() - hits0;
    result.misses = (*fs)->cache().misses() - misses0;
  });
  kernel.Run();
  return result;
}

void PrintPaperTables() {
  const ScanResult lru = RunScan(CachePolicy::kLru);
  const ScanResult mru = RunScan(CachePolicy::kScanAware);
  Table table("Ablation: application-controlled file caching (looping table scan)",
              {"policy", "time (ms sim)", "misses", "hits"});
  table.AddRow({"kernel-style LRU", FmtUs(Us(lru.cycles) / 1000.0), std::to_string(lru.misses),
                std::to_string(lru.hits)});
  table.AddRow({"app scan-aware", FmtUs(Us(mru.cycles) / 1000.0), std::to_string(mru.misses),
                std::to_string(mru.hits)});
  table.Print();
  std::printf("Runtime reduction from choosing the policy in the *library* file\n"
              "system: %.0f%% (Cao et al. report up to 45%% for real workloads).\n",
              100.0 * (1.0 - static_cast<double>(mru.cycles) / lru.cycles));
}

void BM_ScanLru(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScan(CachePolicy::kLru).cycles);
  }
}
BENCHMARK(BM_ScanLru)->Unit(benchmark::kMillisecond);

void BM_ScanMru(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunScan(CachePolicy::kScanAware).cycles);
  }
}
BENCHMARK(BM_ScanMru)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
