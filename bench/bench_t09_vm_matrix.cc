// Table 9 (reconstructed): application performance under application-level
// virtual memory — a 150x150 integer matrix multiplication whose arrays
// live in demand-faulted memory. The paper's point is negative space:
// moving VM out of the kernel costs ordinary applications nothing, because
// once the working set is mapped, the hardware (plus the STLB) does the
// work either way.
#include "bench/bench_util.h"

namespace xok::bench {
namespace {

constexpr uint32_t kN = 150;
constexpr hw::Vaddr kA = 0x1000000;
constexpr hw::Vaddr kB = 0x2000000;
constexpr hw::Vaddr kC = 0x3000000;

hw::Vaddr At(hw::Vaddr base, uint32_t row, uint32_t col) {
  return base + (row * kN + col) * 4;
}

// The multiply, through translated loads/stores on whichever kernel is
// installed. Returns total simulated cycles.
uint64_t MultiplyOnMachine(hw::Machine& machine) {
  // Initialise A and B (faults the working set in).
  for (uint32_t i = 0; i < kN; ++i) {
    for (uint32_t j = 0; j < kN; ++j) {
      (void)machine.StoreWord(At(kA, i, j), i + j);
      (void)machine.StoreWord(At(kB, i, j), i * 2 + j);
    }
  }
  const uint64_t t0 = machine.clock().now();
  for (uint32_t i = 0; i < kN; ++i) {
    for (uint32_t j = 0; j < kN; ++j) {
      uint32_t acc = 0;
      for (uint32_t k = 0; k < kN; ++k) {
        const uint32_t a = machine.LoadWord(At(kA, i, k)).value_or(0);
        const uint32_t b = machine.LoadWord(At(kB, k, j)).value_or(0);
        machine.Charge(hw::Instr(2));  // mul + add.
        acc += a * b;
      }
      (void)machine.StoreWord(At(kC, i, j), acc);
    }
  }
  return machine.clock().now() - t0;
}

uint64_t MeasureExos() {
  uint64_t cycles = 0;
  RunOnExos([&](exos::Process& p) { cycles = MultiplyOnMachine(p.machine()); });
  return cycles;
}

uint64_t MeasureUltrix() {
  uint64_t cycles = 0;
  RunOnUltrix([&](ultrix::Ultrix&, hw::Machine& machine) {
    cycles = MultiplyOnMachine(machine);
  });
  return cycles;
}

void PrintPaperTables() {
  const uint64_t exos_cycles = MeasureExos();
  const uint64_t ultrix_cycles = MeasureUltrix();
  Table table("Table 9 (reconstructed): 150x150 matrix multiply (ms, simulated)",
              {"system", "time", "vs Ultrix"});
  table.AddRow({"Aegis + ExOS (app-level VM)", FmtUs(Us(exos_cycles) / 1000.0),
                FmtX(static_cast<double>(exos_cycles) / ultrix_cycles)});
  table.AddRow({"Ultrix (kernel VM)", FmtUs(Us(ultrix_cycles) / 1000.0), "1.0x"});
  table.Print();
  std::printf("Paper shape check: the two should be within a few percent — \n"
              "application-level VM does not slow down applications.\n");
}

void BM_MatrixExos(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureExos());
  }
  state.counters["sim_ms"] = Us(MeasureExos()) / 1000.0;
}
BENCHMARK(BM_MatrixExos)->Unit(benchmark::kMillisecond);

void BM_MatrixUltrix(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureUltrix());
  }
  state.counters["sim_ms"] = Us(MeasureUltrix()) / 1000.0;
}
BENCHMARK(BM_MatrixUltrix)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
