// Ablation: extensible page-table structures (paper §7 / §2: "how many
// production operating systems support ... efficient and flexible virtual
// memory primitives?" and the complaint that microkernels fix the
// page-table structure). ExOS swaps its two-level table for an inverted
// one with one constructor argument; here we measure what the choice
// buys: table memory for sparse address spaces, and lookup-dominated
// costs (the Appel–Li `dirty` probe) for dense ones.
#include "bench/bench_util.h"
#include "src/base/rand.h"

namespace xok::bench {
namespace {

struct Shape {
  uint64_t dirty_probe_cycles = 0;
  size_t table_bytes = 0;
};

Shape Measure(exos::PageTableKind kind, bool sparse) {
  Shape shape;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 1024, .name = "pt"});
  aegis::Aegis kernel(machine);
  exos::Process proc(
      kernel,
      [&](exos::Process& p) {
        constexpr int kPages = 128;
        std::vector<hw::Vaddr> vas;
        SplitMix64 rng(5);
        for (int i = 0; i < kPages; ++i) {
          const hw::Vaddr va = sparse
                                   ? static_cast<hw::Vaddr>(rng.Next() & 0xffc00000u) | 0x1000
                                   : 0x1000000 + i * hw::kPageBytes;
          if (machine.StoreWord(va, i) == Status::kOk) {
            vas.push_back(va);
          }
        }
        constexpr int kProbes = 2000;
        const uint64_t t0 = machine.clock().now();
        for (int i = 0; i < kProbes; ++i) {
          benchmark::DoNotOptimize(p.vm().Dirty(vas[i % vas.size()]));
        }
        shape.dirty_probe_cycles = (machine.clock().now() - t0) / kProbes;
        shape.table_bytes = p.vm().table_footprint_bytes();
      },
      exos::Process::Options{.slices = 1, .demand_zero = true, .page_table = kind});
  if (!proc.ok()) {
    std::abort();
  }
  kernel.Run();
  return shape;
}

void PrintPaperTables() {
  const Shape two_dense = Measure(exos::PageTableKind::kTwoLevel, /*sparse=*/false);
  const Shape inv_dense = Measure(exos::PageTableKind::kInverted, /*sparse=*/false);
  const Shape two_sparse = Measure(exos::PageTableKind::kTwoLevel, /*sparse=*/true);
  const Shape inv_sparse = Measure(exos::PageTableKind::kInverted, /*sparse=*/true);

  Table table("Ablation: application-chosen page-table structure (128-page working set)",
              {"structure/workload", "dirty probe us", "table KB"});
  table.AddRow({"two-level, dense", FmtUs(Us(two_dense.dirty_probe_cycles)),
                std::to_string(two_dense.table_bytes / 1024)});
  table.AddRow({"inverted, dense", FmtUs(Us(inv_dense.dirty_probe_cycles)),
                std::to_string(inv_dense.table_bytes / 1024)});
  table.AddRow({"two-level, sparse", FmtUs(Us(two_sparse.dirty_probe_cycles)),
                std::to_string(two_sparse.table_bytes / 1024)});
  table.AddRow({"inverted, sparse", FmtUs(Us(inv_sparse.dirty_probe_cycles)),
                std::to_string(inv_sparse.table_bytes / 1024)});
  table.Print();
  std::printf("Probe costs are equivalent; the inverted table's footprint is fixed\n"
              "by physical memory while the two-level table pays one L2 block per\n"
              "touched 4 MB region — the application picks per its address-space\n"
              "shape, with zero kernel involvement (paper §7).\n");
}

void BM_DirtyProbeTwoLevel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(exos::PageTableKind::kTwoLevel, false).dirty_probe_cycles);
  }
}
BENCHMARK(BM_DirtyProbeTwoLevel)->Unit(benchmark::kMillisecond);

void BM_DirtyProbeInverted(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(exos::PageTableKind::kInverted, false).dirty_probe_cycles);
  }
}
BENCHMARK(BM_DirtyProbeInverted)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
