// End-to-end HTTP/KV serving under load: the Cheetah argument, measured
// as one system. The identical seeded GET-dominated workload (zipf keys,
// closed-loop window, loadgen's request stream) is served by
//
//   * the exokernel server libOS (src/exos/server): DPF shard filters,
//     per-worker zero-copy packet rings, ASH hot-key fast path, journaled
//     LibFS stores, Supervisor + stride scheduling — at 1, 2 and 4 CPUs;
//   * the Ultrix-like monolithic baseline: the same httpkv parser and an
//     in-memory store behind kernel UDP sockets (SysRecvFrom/SysSendTo),
//     paying the monolithic trap/copy/wakeup path lengths.
//
// Both stacks charge the identical ParseCost/BuildCost for HTTP text, so
// the measured gap is pure OS architecture: demultiplexing, delivery,
// scheduling and transmission path lengths. Ultrix has no disk API, so
// the headline mix is GET-only against a preloaded store (Cheetah's HTTP
// benchmark shape); storage ablations (journal on/off) run exo-only with
// a PUT-heavy mix.
//
// Ablation ladder (exokernel, 2 CPUs): zero-copy rings vs the legacy
// kernel-queue copy path; ASH fast path on vs off (hot-key latency); and
// write-ahead journal vs write-back under the PUT mix.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/exos/server/loadgen.h"
#include "src/exos/server/server.h"
#include "src/hw/disk.h"
#include "src/net/wire.h"
#include "src/ultrix/ultrix.h"

namespace xok::bench {
namespace {

using exos::server::BuildGetRequest;
using exos::server::BuildHttpResponse;
using exos::server::BuildPutRequest;
using exos::server::BuildQuitRequest;
using exos::server::BuildRequestPayload;
using exos::server::HttpRequest;
using exos::server::HttpResponseView;
using exos::server::KvServer;
using exos::server::KvServerConfig;
using exos::server::LatencySummary;
using exos::server::LoadGenTarget;
using exos::server::LoadKeyName;
using exos::server::LoadStats;
using exos::server::MakePreload;
using exos::server::MakeValue;
using exos::server::Method;
using exos::server::ParseError;
using exos::server::ParseHttpRequest;
using exos::server::ParseResponsePayload;
using exos::server::SummarizeLatencies;
using exos::server::WorkloadConfig;

constexpr uint32_t kRequests = 240;
constexpr uint32_t kKeys = 16;
constexpr uint32_t kValueBytes = 64;
constexpr uint64_t kSeed = 7;
constexpr uint16_t kServerPort = 7080;
constexpr uint16_t kClientPort = 7999;
constexpr uint32_t kWindow = 4;

uint64_t LoopResolve(uint32_t) { return 0xa; }  // Single machine: everything loops back.

// One measured configuration, reduced to the numbers the tables print.
struct RunResult {
  double rps = 0.0;
  LatencySummary latency;      // First-send -> ack, all data requests.
  LatencySummary hot_latency;  // Hot-key GETs (the ASH candidates).
  uint64_t acked = 0;
  uint64_t corrupt = 0;
  uint64_t gave_up = 0;
  uint64_t ash_hits = 0;    // Exokernel only.
  uint64_t path_ring = 0;   // Trace-ring delivery-path counts (exo only).
  uint64_t path_queue = 0;
  uint64_t path_ash = 0;
};

struct ExoVariant {
  uint32_t cpus = 2;
  bool rings = true;
  bool ash = true;
  bool journal = true;
  uint32_t put_per_mille = 0;  // Headline is GET-only (Ultrix has no disk).
};

RunResult RunExo(const ExoVariant& v) {
  hw::Machine machine(
      hw::Machine::Config{.phys_pages = 4096, .name = "e2e", .cpus = v.cpus});
  aegis::Aegis kernel(machine, aegis::Aegis::Config{.max_envs = 200});
  hw::Nic nic(machine, 0xa);
  hw::Disk disk(machine, 1024);
  kernel.AttachNic(&nic);
  kernel.AttachDisk(&disk);

  KvServerConfig config;
  config.iface = exos::NetIface{0xa, 1, LoopResolve};
  config.port = kServerPort;
  config.workers = v.cpus;  // One shard per CPU (power of two by choice).
  config.use_rings = v.rings;
  config.use_ash = v.ash;
  if (v.ash) {
    config.hot_keys = {LoadKeyName(0)};
    config.ash_peer_ip = 2;
    config.ash_peer_port = kClientPort;
  }
  config.journal_blocks = v.journal ? exos::LibFs::kDefaultJournalBlocks : 0;
  config.preload = MakePreload(kKeys, kValueBytes);
  config.stride_slices_per_cpu = 400;
  KvServer server(kernel, config);
  if (!server.ok()) {
    std::abort();
  }

  WorkloadConfig workload;
  workload.seed = kSeed;
  workload.requests = kRequests;
  workload.keys = kKeys;
  workload.value_bytes = kValueBytes;
  workload.put_per_mille = v.put_per_mille;
  workload.window = kWindow;
  workload.client_port = kClientPort;
  workload.trace = true;
  LoadGenTarget target;
  target.iface = exos::NetIface{0xa, 2, LoopResolve};
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = config.workers;
  target.hot_key = LoadKeyName(0);

  LoadStats stats;
  exos::Process client(kernel,
                       [&](exos::Process& p) { stats = RunLoadGen(p, target, workload); });
  if (!client.ok()) {
    std::abort();
  }
  kernel.Run();

  if (stats.gave_up != 0 || stats.corrupt != 0 || stats.deadline_hit != 0) {
    std::fprintf(stderr, "exo run unhealthy: gave_up=%llu corrupt=%llu deadline=%llu\n",
                 static_cast<unsigned long long>(stats.gave_up),
                 static_cast<unsigned long long>(stats.corrupt),
                 static_cast<unsigned long long>(stats.deadline_hit));
    std::abort();
  }
  RunResult r;
  r.rps = stats.Rps();
  r.latency = stats.latency;
  r.hot_latency = stats.hot_latency;
  r.acked = stats.acked;
  r.corrupt = stats.corrupt;
  r.gave_up = stats.gave_up;
  r.ash_hits = server.TotalAshHits();
  r.path_ring = stats.stages.path_ring;
  r.path_queue = stats.stages.path_queue;
  r.path_ash = stats.stages.path_ash;
  return r;
}

// The monolithic baseline: one Ultrix kernel on the same simulated
// machine, a server process on kernel UDP sockets with the same parser,
// the same preloaded values, and the same ParseCost/BuildCost charges —
// and a client process replaying loadgen's exact seeded request stream
// (same SplitMix draws, same zipf CDF, same canonical request text).
struct UltrixClientState {
  // Mirrors loadgen's rng so both stacks serve the identical key sequence.
  uint64_t rng_state;
  std::vector<double> cdf;
  explicit UltrixClientState(uint64_t seed, uint32_t keys, double zipf_s)
      : rng_state(seed), cdf(keys, 0.0) {
    double total = 0.0;
    for (uint32_t i = 0; i < keys; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
      cdf[i] = total;
    }
    for (double& c : cdf) {
      c /= total;
    }
  }
  uint64_t Next() {
    uint64_t z = (rng_state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint32_t Below(uint32_t n) { return n == 0 ? 0 : static_cast<uint32_t>(Next() % n); }
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }
  uint32_t DrawKey() {
    const double u = Unit();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<uint32_t>(
        std::min<ptrdiff_t>(it - cdf.begin(), static_cast<ptrdiff_t>(cdf.size()) - 1));
  }
};

RunResult RunUltrix(uint32_t put_per_mille) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 4096, .name = "ult"});
  ultrix::Ultrix kernel(machine);
  hw::Nic nic(machine, 0xa);
  kernel.AttachNic(&nic, ultrix::Ultrix::NetConfig{0xa, 1, LoopResolve});

  RunResult r;

  // Server first: it runs until it blocks in SysRecvFrom, so the port is
  // bound (and the store preloaded) before the client's first send.
  (void)kernel.CreateProcess([&] {
    struct Entry {
      std::string value;
      uint16_t sum;
    };
    std::unordered_map<std::string, Entry> store;
    for (const auto& [key, value] : MakePreload(kKeys, kValueBytes)) {
      store[key] = Entry{value, exos::server::BodySum(value)};
    }
    Result<int> fd = kernel.SysSocketUdp();
    if (!fd.ok() || kernel.SysBindPort(*fd, kServerPort) != Status::kOk) {
      std::abort();
    }
    for (;;) {
      Result<ultrix::Datagram> dgram = kernel.SysRecvFrom(*fd);
      if (!dgram.ok()) {
        std::abort();
      }
      if (dgram->payload.size() < exos::server::kReqHeaderBytes) {
        continue;
      }
      const uint32_t req_id = net::GetBe32(dgram->payload, 1);
      const std::span<const uint8_t> text(
          dgram->payload.data() + exos::server::kReqHeaderBytes,
          dgram->payload.size() - exos::server::kReqHeaderBytes);
      machine.Charge(exos::server::ParseCost(text.size()));
      HttpRequest req;
      const ParseError err = ParseHttpRequest(text, &req);
      int status = 400;
      std::string body;
      uint16_t sum = 0;
      bool have_sum = false;
      bool quit = false;
      if (err == ParseError::kOk) {
        switch (req.method) {
          case Method::kQuit:
            status = 200;
            body = "bye";
            quit = true;
            break;
          case Method::kGet: {
            auto it = store.find(std::string(req.key));
            if (it != store.end()) {
              status = 200;
              body = it->second.value;
              sum = it->second.sum;
              have_sum = true;
            } else {
              status = 404;
            }
            break;
          }
          case Method::kPut:
            store[std::string(req.key)] =
                Entry{std::string(req.body), exos::server::BodySum(req.body)};
            status = 201;
            break;
        }
      }
      const std::string resp_text = have_sum ? BuildHttpResponse(status, body, sum)
                                             : BuildHttpResponse(status, body);
      machine.Charge(exos::server::BuildCost(resp_text.size()));
      std::vector<uint8_t> resp(exos::server::kRespHeaderBytes + resp_text.size());
      net::PutBe32(resp, 0, req_id);
      std::copy(resp_text.begin(), resp_text.end(),
                resp.begin() + exos::server::kRespHeaderBytes);
      (void)kernel.SysSendTo(*fd, dgram->src_ip, dgram->src_port, resp);
      if (quit) {
        break;
      }
    }
  });

  (void)kernel.CreateProcess([&] {
    Result<int> fd = kernel.SysSocketUdp();
    if (!fd.ok() || kernel.SysBindPort(*fd, kClientPort) != Status::kOk) {
      std::abort();
    }
    UltrixClientState rng(kSeed, kKeys, /*zipf_s=*/1.1);
    std::vector<uint32_t> latest_version(kKeys, 0);
    struct Pending {
      uint64_t sent_at = 0;
      int key_index = -1;
      bool is_get = false;
    };
    std::unordered_map<uint32_t, Pending> outstanding;
    std::vector<uint64_t> samples;
    std::vector<uint64_t> hot_samples;

    uint32_t next_id = 1;
    uint32_t issued = 0;
    const uint64_t t0 = machine.clock().now();
    auto send_next = [&] {
      // The exact draw order loadgen uses: mix draw, then the zipf key.
      const uint32_t draw = rng.Below(1000);
      const uint32_t key_index = rng.DrawKey();
      const std::string key = LoadKeyName(key_index);
      Pending pending;
      pending.key_index = static_cast<int>(key_index);
      pending.sent_at = machine.clock().now();
      std::vector<uint8_t> payload;
      if (draw < put_per_mille) {
        const uint32_t version = ++latest_version[key_index];
        payload = BuildRequestPayload(
            next_id, BuildPutRequest(key, MakeValue(key, version, kValueBytes)), key);
      } else {
        pending.is_get = true;
        payload = BuildRequestPayload(next_id, BuildGetRequest(key), key);
      }
      (void)kernel.SysSendTo(*fd, 1, kServerPort, payload);
      outstanding.emplace(next_id, pending);
      ++next_id;
      ++issued;
    };
    auto recv_one = [&] {
      Result<ultrix::Datagram> dgram = kernel.SysRecvFrom(*fd);
      if (!dgram.ok()) {
        std::abort();
      }
      HttpResponseView view;
      if (!ParseResponsePayload(dgram->payload, &view)) {
        ++r.corrupt;
        return;
      }
      auto it = outstanding.find(view.req_id);
      if (it == outstanding.end()) {
        return;  // QUIT ack or duplicate.
      }
      const Pending& pending = it->second;
      const uint64_t rtt = machine.clock().now() - pending.sent_at;
      if (pending.is_get) {
        const int version =
            view.sum_ok
                ? exos::server::ParseValueVersion(LoadKeyName(pending.key_index),
                                                  view.body, kValueBytes)
                : -1;
        if (view.status != 200 || version < 0 ||
            static_cast<uint32_t>(version) >
                latest_version[static_cast<uint32_t>(pending.key_index)]) {
          ++r.corrupt;
        }
        if (pending.key_index == 0) {
          hot_samples.push_back(rtt);
        }
      } else if (view.status != 201) {
        ++r.corrupt;
      }
      samples.push_back(rtt);
      ++r.acked;
      outstanding.erase(it);
    };

    while (r.acked < kRequests) {
      while (issued < kRequests && outstanding.size() < kWindow) {
        send_next();
      }
      recv_one();
    }
    const uint64_t elapsed = machine.clock().now() - t0;

    // Stop the server (unmeasured, like loadgen's QUIT drain).
    const std::string quit = BuildQuitRequest();
    (void)kernel.SysSendTo(*fd, 1, kServerPort,
                           BuildRequestPayload(next_id, quit, LoadKeyName(0)));
    (void)kernel.SysRecvFrom(*fd);

    r.rps = elapsed == 0 ? 0.0
                         : static_cast<double>(r.acked) *
                               static_cast<double>(hw::kClockHz) /
                               static_cast<double>(elapsed);
    r.latency = SummarizeLatencies(std::move(samples));
    r.hot_latency = SummarizeLatencies(std::move(hot_samples));
  });

  kernel.Run();
  if (r.acked != kRequests || r.corrupt != 0) {
    std::fprintf(stderr, "ultrix run unhealthy: acked=%llu corrupt=%llu\n",
                 static_cast<unsigned long long>(r.acked),
                 static_cast<unsigned long long>(r.corrupt));
    std::abort();
  }
  return r;
}

std::string FmtRps(double rps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", rps);
  return buf;
}

void PrintPaperTables() {
  // Headline: identical seeded GET-only workload, both stacks.
  const RunResult exo1 = RunExo({.cpus = 1});
  const RunResult exo2 = RunExo({.cpus = 2});
  const RunResult exo4 = RunExo({.cpus = 4});
  const RunResult ult = RunUltrix(/*put_per_mille=*/0);

  Table head("HTTP/KV serving under load: identical seeded GET workload "
             "(simulated cycles -> us)",
             {"system", "cpus", "RPS", "p50", "p99", "p999", "hot p50", "ASH hits"});
  auto row = [&](const char* name, const char* cpus, const RunResult& r) {
    head.AddRow({name, cpus, FmtRps(r.rps), FmtUs(Us(r.latency.p50)),
                 FmtUs(Us(r.latency.p99)), FmtUs(Us(r.latency.p999)),
                 FmtUs(Us(r.hot_latency.p50)), std::to_string(r.ash_hits)});
  };
  row("ExOS server", "1", exo1);
  row("ExOS server", "2", exo2);
  row("ExOS server", "4", exo4);
  row("Ultrix sockets", "1", ult);
  head.Print();
  std::printf("ExOS/Ultrix throughput: %s at 1 CPU, %s at 2, %s at 4.\n",
              FmtX(exo1.rps / ult.rps).c_str(), FmtX(exo2.rps / ult.rps).c_str(),
              FmtX(exo4.rps / ult.rps).c_str());

  // Ablations (exokernel, 2 CPUs): each row removes one mechanism.
  const RunResult no_rings = RunExo({.cpus = 2, .rings = false});
  const RunResult no_ash = RunExo({.cpus = 2, .ash = false});
  const RunResult put_journal =
      RunExo({.cpus = 2, .ash = false, .journal = true, .put_per_mille = 400});
  const RunResult put_writeback =
      RunExo({.cpus = 2, .ash = false, .journal = false, .put_per_mille = 400});

  Table abl("Ablation ladder (ExOS, 2 CPUs)",
            {"configuration", "workload", "RPS", "p99", "hot p50", "delivery"});
  auto path = [](const RunResult& r) {
    return "ash:" + std::to_string(r.path_ash) + " ring:" + std::to_string(r.path_ring) +
           " queue:" + std::to_string(r.path_queue);
  };
  abl.AddRow({"rings + ASH", "GET", FmtRps(exo2.rps),
              FmtUs(Us(exo2.latency.p99)), FmtUs(Us(exo2.hot_latency.p50)), path(exo2)});
  abl.AddRow({"copy queue", "GET", FmtRps(no_rings.rps),
              FmtUs(Us(no_rings.latency.p99)), FmtUs(Us(no_rings.hot_latency.p50)),
              path(no_rings)});
  abl.AddRow({"ASH off", "GET", FmtRps(no_ash.rps), FmtUs(Us(no_ash.latency.p99)),
              FmtUs(Us(no_ash.hot_latency.p50)), path(no_ash)});
  abl.AddRow({"journal (WAL)", "40% PUT", FmtRps(put_journal.rps),
              FmtUs(Us(put_journal.latency.p99)),
              FmtUs(Us(put_journal.hot_latency.p50)), path(put_journal)});
  abl.AddRow({"write-back", "40% PUT", FmtRps(put_writeback.rps),
              FmtUs(Us(put_writeback.latency.p99)),
              FmtUs(Us(put_writeback.hot_latency.p50)), path(put_writeback)});
  abl.Print();
  std::printf(
      "Paper shape check: ExOS beats Ultrix on RPS at every CPU count; the ASH\n"
      "fast path answers hot-key GETs below the worker path's hot p50; rings\n"
      "beat the copy queue; write-back trades durability for PUT throughput.\n");
}

// One full simulated run per configuration; counters carry the simulated
// results (RPS, percentiles) — wall time below is host simulation speed.
void ReportRun(benchmark::State& state, const RunResult& r) {
  state.counters["rps"] = r.rps;
  state.counters["p50_us"] = Us(r.latency.p50);
  state.counters["p99_us"] = Us(r.latency.p99);
  state.counters["p999_us"] = Us(r.latency.p999);
  state.counters["hot_p50_us"] = Us(r.hot_latency.p50);
  state.counters["ash_hits"] = static_cast<double>(r.ash_hits);
}

void BM_E2EExoServer(benchmark::State& state) {
  RunResult r;
  for (auto _ : state) {
    r = RunExo({.cpus = static_cast<uint32_t>(state.range(0))});
  }
  ReportRun(state, r);
}
BENCHMARK(BM_E2EExoServer)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_E2EUltrixServer(benchmark::State& state) {
  RunResult r;
  for (auto _ : state) {
    r = RunUltrix(/*put_per_mille=*/0);
  }
  ReportRun(state, r);
}
BENCHMARK(BM_E2EUltrixServer)->Unit(benchmark::kMillisecond);

void BM_E2EExoCopyQueue(benchmark::State& state) {
  RunResult r;
  for (auto _ : state) {
    r = RunExo({.cpus = 2, .rings = false});
  }
  ReportRun(state, r);
}
BENCHMARK(BM_E2EExoCopyQueue)->Unit(benchmark::kMillisecond);

void BM_E2EExoNoAsh(benchmark::State& state) {
  RunResult r;
  for (auto _ : state) {
    r = RunExo({.cpus = 2, .ash = false});
  }
  ReportRun(state, r);
}
BENCHMARK(BM_E2EExoNoAsh)->Unit(benchmark::kMillisecond);

void BM_E2EExoPutJournal(benchmark::State& state) {
  RunResult r;
  for (auto _ : state) {
    r = RunExo({.cpus = 2, .ash = false, .journal = true, .put_per_mille = 400});
  }
  ReportRun(state, r);
}
BENCHMARK(BM_E2EExoPutJournal)->Unit(benchmark::kMillisecond);

void BM_E2EExoPutWriteback(benchmark::State& state) {
  RunResult r;
  for (auto _ : state) {
    r = RunExo({.cpus = 2, .ash = false, .journal = false, .put_per_mille = 400});
  }
  ReportRun(state, r);
}
BENCHMARK(BM_E2EExoPutWriteback)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
