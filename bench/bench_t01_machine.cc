// Table 1: machine configuration. The paper lists the DECstations used for
// the experiments; we print the simulated machine standing in for them.
#include <cstdio>

#include "src/core/stlb.h"
#include "src/hw/cost.h"
#include "src/hw/tlb.h"

int main() {
  using namespace xok;
  std::printf("=== Table 1: experiment machine configuration (simulated) ===\n");
  std::printf("%-28s %s\n", "model", "DECstation 5000/125 (simulated)");
  std::printf("%-28s %.0f MHz MIPS R3000 (modelled)\n", "cpu",
              static_cast<double>(hw::kClockHz) / 1e6);
  std::printf("%-28s %u cycles (%.0f ns) effective\n", "instruction cost",
              static_cast<unsigned>(hw::kCyclesPerInstruction),
              hw::CyclesToMicros(hw::kCyclesPerInstruction) * 1000.0);
  std::printf("%-28s %u entries, fully associative, ASID-tagged\n", "hardware TLB",
              hw::Tlb::kEntries);
  std::printf("%-28s %u entries, direct mapped (Aegis)\n", "software TLB",
              aegis::Stlb::kEntries);
  std::printf("%-28s %u bytes\n", "page size", hw::kPageBytes);
  std::printf("%-28s 10 Mb/s Ethernet (%.1f us/byte on the wire)\n", "network",
              hw::CyclesToMicros(hw::kWireCyclesPerByte));
  std::printf("\nAll microsecond figures in the other tables are simulated time on\n"
              "this machine model; google-benchmark rows are host wall-clock.\n");
  return 0;
}
