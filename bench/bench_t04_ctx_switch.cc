// Table 4 (reconstructed): context switch via directed yield, Aegis vs
// Ultrix. The workload ping-pongs control between two processes; the time
// per switch is half a roundtrip. Aegis's yield does minimal bookkeeping
// and lets applications save their own state; Ultrix runs the full
// in-kernel context-switch machinery on every crossing.
#include "bench/bench_util.h"

namespace xok::bench {
namespace {

constexpr int kRounds = 2'000;

uint64_t MeasureAegisYield() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 128, .name = "t4a"});
  aegis::Aegis kernel(machine);
  aegis::EnvId id_a = aegis::kNoEnv;
  aegis::EnvId id_b = aegis::kNoEnv;
  uint64_t per_switch = 0;

  aegis::EnvSpec a;
  a.entry = [&] {
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      kernel.SysYield(id_b);
    }
    per_switch = (machine.clock().now() - t0) / (2 * kRounds);
  };
  aegis::EnvSpec b;
  b.entry = [&] {
    for (int i = 0; i < kRounds; ++i) {
      kernel.SysYield(id_a);
    }
  };
  id_a = kernel.CreateEnv(std::move(a))->env;
  id_b = kernel.CreateEnv(std::move(b))->env;
  kernel.Run();
  return per_switch;
}

uint64_t MeasureUltrixYield() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 128, .name = "t4u"});
  ultrix::Ultrix kernel(machine);
  uint64_t per_switch = 0;
  (void)kernel.CreateProcess([&] {
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      kernel.SysYield();
    }
    per_switch = (machine.clock().now() - t0) / (2 * kRounds);
  });
  (void)kernel.CreateProcess([&] {
    for (int i = 0; i < kRounds; ++i) {
      kernel.SysYield();
    }
  });
  kernel.Run();
  return per_switch;
}

void PrintPaperTables() {
  const uint64_t aegis_switch = MeasureAegisYield();
  const uint64_t ultrix_switch = MeasureUltrixYield();
  Table table("Table 4 (reconstructed): context switch / directed yield (us, simulated)",
              {"system", "per switch", "vs Aegis"});
  table.AddRow({"Aegis yield", FmtUs(Us(aegis_switch)), "1.0x"});
  table.AddRow({"Ultrix switch", FmtUs(Us(ultrix_switch)),
                FmtX(static_cast<double>(ultrix_switch) / aegis_switch)});
  table.Print();
}

void BM_AegisYieldPingPong(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureAegisYield());
  }
  state.counters["sim_us"] = Us(MeasureAegisYield());
}
BENCHMARK(BM_AegisYieldPingPong)->Unit(benchmark::kMillisecond);

void BM_UltrixYieldPingPong(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureUltrixYield());
  }
  state.counters["sim_us"] = Us(MeasureUltrixYield());
}
BENCHMARK(BM_UltrixYieldPingPong)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
