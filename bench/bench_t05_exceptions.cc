// Table 5: exception dispatch times — unalign, overflow, coproc, prot —
// Aegis/ExOS vs Ultrix. Aegis dispatches every exception straight to the
// application's handler (18 kernel instructions); Ultrix can only deliver
// them as signals through the full sigframe machinery.
#include "bench/bench_util.h"

namespace xok::bench {
namespace {

constexpr int kIters = 1'000;

struct Times {
  uint64_t unalign = 0;
  uint64_t overflow = 0;
  uint64_t coproc = 0;
  uint64_t prot = 0;
};

Times MeasureAegis() {
  Times times;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "t5a"});
  aegis::Aegis kernel(machine);
  exos::Process proc(kernel, [&](exos::Process& p) {
    // Raw exceptions: an application handler that simply resumes.
    p.set_raw_exception_handler([](const hw::TrapFrame&) { return aegis::ExcAction::kSkip; });
    uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)machine.LoadWord(0x100001);  // Unaligned.
    }
    times.unalign = (machine.clock().now() - t0) / kIters;

    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)machine.AddOverflow(0x7fffffff, 1);
    }
    times.overflow = (machine.clock().now() - t0) / kIters;

    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)machine.CoprocOp();
    }
    times.coproc = (machine.clock().now() - t0) / kIters;

    // prot: take a page-protection trap, repair it in the handler, retry.
    (void)machine.StoreWord(0x200000, 1);
    p.vm().set_trap_handler([&](hw::Vaddr va, bool) {
      return p.vm().Protect(va & ~hw::kPageMask, 1, exos::kProtWrite) == Status::kOk;
    });
    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)p.vm().Protect(0x200000, 1, exos::kProtNone);
      (void)machine.LoadWord(0x200000);
    }
    times.prot = (machine.clock().now() - t0) / kIters;
  });
  kernel.Run();
  return times;
}

Times MeasureUltrix() {
  Times times;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "t5u"});
  ultrix::Ultrix kernel(machine);
  (void)kernel.CreateProcess([&] {
    kernel.SysSignal([&](hw::Vaddr, bool) { return false; });
    uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)machine.LoadWord(0x100001);
    }
    times.unalign = (machine.clock().now() - t0) / kIters;

    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)machine.AddOverflow(0x7fffffff, 1);
    }
    times.overflow = (machine.clock().now() - t0) / kIters;

    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)machine.CoprocOp();
    }
    times.coproc = (machine.clock().now() - t0) / kIters;

    (void)machine.StoreWord(0x200000, 1);
    kernel.SysSignal([&](hw::Vaddr va, bool) {
      return kernel.SysMprotect(va & ~hw::kPageMask, 1, ultrix::kProtWrite) == Status::kOk;
    });
    t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      (void)kernel.SysMprotect(0x200000, 1, ultrix::kProtNone);
      (void)machine.LoadWord(0x200000);
    }
    times.prot = (machine.clock().now() - t0) / kIters;
  });
  kernel.Run();
  return times;
}

void PrintPaperTables() {
  const Times aegis_times = MeasureAegis();
  const Times ultrix_times = MeasureUltrix();
  Table table("Table 5: exception dispatch (us, simulated)",
              {"exception", "Aegis/ExOS", "Ultrix", "Ultrix/Aegis"});
  auto row = [&](const char* name, uint64_t a, uint64_t u) {
    table.AddRow({name, FmtUs(Us(a)), FmtUs(Us(u)), FmtX(static_cast<double>(u) / a)});
  };
  row("unalign", aegis_times.unalign, ultrix_times.unalign);
  row("overflow", aegis_times.overflow, ultrix_times.overflow);
  row("coproc", aegis_times.coproc, ultrix_times.coproc);
  row("prot", aegis_times.prot, ultrix_times.prot);
  table.Print();
  std::printf("Paper shape check: Aegis dispatch ~1.5-3 us; Ultrix ~100x slower.\n");
}

void BM_AegisExceptionDispatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureAegis().overflow);
  }
  state.counters["sim_us"] = Us(MeasureAegis().overflow);
}
BENCHMARK(BM_AegisExceptionDispatch)->Unit(benchmark::kMillisecond);

void BM_UltrixExceptionDispatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureUltrix().overflow);
  }
  state.counters["sim_us"] = Us(MeasureUltrix().overflow);
}
BENCHMARK(BM_UltrixExceptionDispatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
