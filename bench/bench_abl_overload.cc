// Ablation: goodput under overload — load shedding on vs off. The same
// HTTP/KV server libOS (2 workers, zero-copy rings, journaled stores)
// serves a disk-bound GET workload (no value cache, a 4-slot block
// cache: a request costs real store reads, the regime Cheetah measured)
// while an open-loop client overdrives it past capacity. Requests carry
// a TTL: past it the client abandons the request, so any server work on
// it afterwards is pure waste. Two server configurations:
//
//   * shed OFF ("no overload layer"): 256-slot RX rings queue frames to
//     physical capacity and the worker serves them FIFO — including
//     requests whose sender already gave up (honor_ttl off). Once
//     sustained overdrive ages the queue past the TTL, the server spends
//     its whole disk budget on corpses and goodput collapses.
//   * shed ON: the library-installed ring watermark (8) drops excess
//     frames at the demultiplexer for ~4 cycles each, so admitted work
//     completes far inside the TTL; expired stragglers are shed before
//     parse; batch admission 503s + Retry-After pacing bound each drain;
//     writes would shed before reads (the workload is GET-only).
//
// The table is the classic goodput-vs-offered-load curve: a fixed
// ladder of open-loop rates from well under capacity to deep overload,
// both arms at every rung. Capacity is not one number here — the block
// cache makes service time mix-dependent (an overloaded shedding server
// mostly admits hot, cached keys; a cold closed loop rotates all keys
// through 4 slots) — so "peak goodput" is defined empirically as the
// best goodput observed anywhere on the curve, and the robustness
// contract is checked at the deepest overload rung: shedding must hold
// >= 70% of peak while the unprotected server collapses (the excess is
// paid by the excess, not by the service).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/exos/server/loadgen.h"
#include "src/exos/server/server.h"
#include "src/hw/disk.h"

namespace xok::bench {
namespace {

using exos::server::KvServer;
using exos::server::KvServerConfig;
using exos::server::LoadGenTarget;
using exos::server::LoadKeyName;
using exos::server::LoadStats;
using exos::server::MakePreload;
using exos::server::WorkerStats;
using exos::server::WorkloadConfig;

constexpr uint32_t kRequests = 600;
constexpr uint32_t kKeys = 16;
constexpr uint32_t kValueBytes = 64;
constexpr uint64_t kSeed = 11;
constexpr uint16_t kServerPort = 7080;
constexpr uint16_t kClientPort = 7999;
constexpr uint64_t kTtlCycles = 2'000'000;  // 80 simulated ms budget/request.

uint64_t LoopResolve(uint32_t) { return 0xa; }  // Single machine loopback.

struct OverloadRun {
  double goodput_rps = 0.0;     // Acked data requests per simulated second.
  uint64_t acked = 0;
  uint64_t ttl_abandoned = 0;   // Offered work the contract let die.
  uint64_t busy_503 = 0;        // Admission refusals seen by the client.
  uint64_t retries = 0;
  uint64_t shed_server = 0;     // Worker-side sheds (busy + writes + expired).
  uint64_t corrupt = 0;
};

// One new request every `interval` cycles, open loop; `ttl` is the
// per-request deadline stamped into the envelope (0 = none).
OverloadRun Run(bool shed, uint64_t interval, uint64_t ttl) {
  hw::Machine machine(
      hw::Machine::Config{.phys_pages = 4096, .name = "ovl", .cpus = 2});
  aegis::Aegis kernel(machine, aegis::Aegis::Config{.max_envs = 64});
  hw::Nic nic(machine, 0xa);
  hw::Disk disk(machine, 1024);
  kernel.AttachNic(&nic);
  kernel.AttachDisk(&disk);

  KvServerConfig config;
  config.iface = exos::NetIface{0xa, 1, LoopResolve};
  config.port = kServerPort;
  config.workers = 2;
  config.use_rings = true;
  config.ring.rx_slots = 256;   // Deep enough to bufferbloat when unshed.
  config.kv_cache_entries = 0;  // Disk-bound GETs: service time is a
  config.fs_cache_slots = 4;    // journaled-store read, not a hash probe.
  config.preload = MakePreload(kKeys, kValueBytes);
  config.stride_slices_per_cpu = 400;
  if (shed) {
    config.ring.shed_watermark = 8;    // Admitted work completes inside TTL.
    config.admission_max_batch = 16;   // 503 + Retry-After backstop.
    config.admission_write_shed = 12;  // PUTs shed first (GET-only here).
    config.retry_after_us = 2000;      // Pace refusals clear of congestion.
  } else {
    config.honor_ttl = false;  // No overload layer at all: corpses get
                               // full parse/store/reply service.
  }
  KvServer server(kernel, config);
  if (!server.ok()) {
    std::abort();
  }

  WorkloadConfig workload;
  workload.seed = kSeed;
  workload.requests = kRequests;
  workload.keys = kKeys;
  workload.value_bytes = kValueBytes;
  workload.put_per_mille = 0;
  workload.window = 8;
  workload.client_port = kClientPort;
  workload.open_loop_interval_cycles = interval;
  workload.request_ttl_cycles = ttl;
  workload.retry_timeout_cycles = 300'000;
  workload.retry_backoff_cap_cycles = 1'200'000;
  workload.retry_jitter = true;
  workload.max_retries = 1000;  // The TTL is the budget, not retry count.
  LoadGenTarget target;
  target.iface = exos::NetIface{0xa, 2, LoopResolve};
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = config.workers;
  target.hot_key = LoadKeyName(0);

  LoadStats stats;
  exos::Process client(
      kernel, [&](exos::Process& p) { stats = RunLoadGen(p, target, workload); });
  if (!client.ok()) {
    std::abort();
  }
  kernel.Run();

  OverloadRun r;
  r.goodput_rps = stats.Rps();
  r.acked = stats.acked;
  r.ttl_abandoned = stats.ttl_abandoned;
  r.busy_503 = stats.busy_503;
  r.retries = stats.retries;
  r.corrupt = stats.corrupt;
  for (uint32_t i = 0; i < config.workers; ++i) {
    const WorkerStats& ws = server.worker_stats(i);
    r.shed_server += ws.shed_busy + ws.shed_writes + ws.expired;
  }
  if (r.corrupt != 0 || stats.gave_up != 0) {
    std::fprintf(stderr, "overload run unhealthy: corrupt=%llu gave_up=%llu\n",
                 static_cast<unsigned long long>(r.corrupt),
                 static_cast<unsigned long long>(stats.gave_up));
    std::abort();
  }
  return r;
}

// The offered-load ladder: one new request every N cycles. 1.6M cycles
// (~16 r/s) is comfortably under even the cold-cache service rate; 10k
// cycles (2500 r/s) is deep overload for any admitted mix.
constexpr uint64_t kLadder[] = {1'600'000, 400'000, 100'000, 40'000, 10'000};

void PrintPaperTables() {
  struct Rung {
    double offered;
    OverloadRun off;
    OverloadRun on;
  };
  std::vector<Rung> rungs;
  double peak = 0.0;
  for (const uint64_t interval : kLadder) {
    Rung rung;
    rung.offered = static_cast<double>(hw::kClockHz) / interval;
    rung.off = Run(/*shed=*/false, interval, kTtlCycles);
    rung.on = Run(/*shed=*/true, interval, kTtlCycles);
    peak = std::max({peak, rung.off.goodput_rps, rung.on.goodput_rps});
    rungs.push_back(rung);
  }
  const auto pct = [&](const OverloadRun& r) {
    return peak == 0.0 ? 0.0 : 100.0 * r.goodput_rps / peak;
  };

  Table table("Ablation: goodput vs offered load, shed off/ON (open loop, TTL 80ms)",
              {"offered r/s", "shed", "goodput r/s", "% of peak", "acked",
               "ttl dead", "503s", "retries", "server sheds"});
  for (const Rung& rung : rungs) {
    for (const bool shed : {false, true}) {
      const OverloadRun& r = shed ? rung.on : rung.off;
      table.AddRow({FmtUs(rung.offered), shed ? "ON" : "off",
                    FmtUs(r.goodput_rps), FmtUs(pct(r)) + "%",
                    std::to_string(r.acked), std::to_string(r.ttl_abandoned),
                    std::to_string(r.busy_503), std::to_string(r.retries),
                    std::to_string(r.shed_server)});
    }
  }
  table.Print();

  const Rung& deepest = rungs.back();
  const double shed_pct = pct(deepest.on);
  const double unshed_pct = pct(deepest.off);
  std::printf(
      "Peak goodput on the curve: %.0f r/s. Offered load beyond capacity must\n"
      "cost the excess, not the service: at %.0f r/s offered, shedding holds\n"
      "%.0f%% of peak (contract: >= 70%%) while the unprotected server serves a\n"
      "256-deep ring of corpses and holds %.0f%% — %s\n",
      peak, deepest.offered, shed_pct, unshed_pct,
      (shed_pct >= 70.0 && shed_pct > 2.0 * unshed_pct)
          ? "contract holds"
          : "CONTRACT BROKEN (regression)");
}

void BM_OverloadShedOnDeep(benchmark::State& state) {
  for (auto _ : state) {
    const OverloadRun r = Run(true, kLadder[4], kTtlCycles);
    benchmark::DoNotOptimize(r.acked);
    state.counters["goodput_rps"] = r.goodput_rps;
    state.counters["server_sheds"] = static_cast<double>(r.shed_server);
  }
}
BENCHMARK(BM_OverloadShedOnDeep)->Unit(benchmark::kMillisecond);

void BM_OverloadShedOffDeep(benchmark::State& state) {
  for (auto _ : state) {
    const OverloadRun r = Run(false, kLadder[4], kTtlCycles);
    benchmark::DoNotOptimize(r.acked);
    state.counters["goodput_rps"] = r.goodput_rps;
    state.counters["retries"] = static_cast<double>(r.retries);
  }
}
BENCHMARK(BM_OverloadShedOffDeep)->Unit(benchmark::kMillisecond);

void BM_OverloadBaseline(benchmark::State& state) {
  for (auto _ : state) {
    const OverloadRun r = Run(false, kLadder[0], kTtlCycles);
    benchmark::DoNotOptimize(r.acked);
    state.counters["goodput_rps"] = r.goodput_rps;
  }
}
BENCHMARK(BM_OverloadBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
