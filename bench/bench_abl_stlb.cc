// Ablation: the software TLB (paper §4, §5.4). With a 128-page working set
// (twice the 64-entry hardware TLB), every capacity miss either hits the
// STLB inside the kernel refill path or takes the full dispatch to the
// application's pager. The STLB is what makes application-level VM cheap.
#include "bench/bench_util.h"

namespace xok::bench {
namespace {

constexpr int kPages = 128;
constexpr hw::Vaddr kBase = 0x1000000;
constexpr int kSweeps = 50;

struct StlbNumbers {
  uint64_t per_access = 0;
  uint64_t stlb_hits = 0;
  uint64_t app_refills = 0;
};

StlbNumbers Measure(bool stlb_enabled) {
  StlbNumbers numbers;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "stlb"});
  aegis::Aegis kernel(machine);
  kernel.set_stlb_enabled(stlb_enabled);
  exos::Process proc(kernel, [&](exos::Process& p) {
    for (int i = 0; i < kPages; ++i) {
      (void)machine.StoreWord(kBase + i * hw::kPageBytes, i);
    }
    const uint64_t misses_before = kernel.stlb_misses();
    const uint64_t t0 = machine.clock().now();
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      for (int i = 0; i < kPages; ++i) {
        (void)machine.LoadWord(kBase + i * hw::kPageBytes);
      }
    }
    numbers.per_access = (machine.clock().now() - t0) / (kSweeps * kPages);
    numbers.stlb_hits = kernel.stlb_hits();
    numbers.app_refills = kernel.stlb_misses() - misses_before;
    (void)p;
  });
  kernel.Run();
  return numbers;
}

void PrintPaperTables() {
  const StlbNumbers with = Measure(true);
  const StlbNumbers without = Measure(false);
  Table table("Ablation: software TLB under a 128-page working set (64-entry hw TLB)",
              {"config", "us/access", "vs STLB on"});
  table.AddRow({"STLB on", FmtUs(Us(with.per_access)), "1.0x"});
  table.AddRow({"STLB off", FmtUs(Us(without.per_access)),
                FmtX(static_cast<double>(without.per_access) / with.per_access)});
  table.Print();
  std::printf("With the STLB, capacity misses are absorbed in the kernel refill\n"
              "path (%llu STLB hits); without it, every miss pays the full\n"
              "dispatch into the application pager.\n",
              static_cast<unsigned long long>(with.stlb_hits));
}

void BM_SweepStlbOn(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(true).per_access);
  }
  state.counters["sim_us"] = Us(Measure(true).per_access);
}
BENCHMARK(BM_SweepStlbOn)->Unit(benchmark::kMillisecond);

void BM_SweepStlbOff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(false).per_access);
  }
  state.counters["sim_us"] = Us(Measure(false).per_access);
}
BENCHMARK(BM_SweepStlbOff)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
