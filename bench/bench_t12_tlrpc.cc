// Table 12: extensible RPC — tlrpc (trusts the server to preserve callee-
// saved registers) vs the general lrpc. Because the RPC stubs are library
// code, an application that trusts its server simply links the cheaper
// stub; no kernel change is involved. This is §7.1's extensibility claim.
#include "bench/bench_util.h"
#include "src/exos/ipc.h"

namespace xok::bench {
namespace {

constexpr int kRounds = 2'000;

struct RpcTimes {
  uint64_t lrpc = 0;
  uint64_t tlrpc = 0;
};

RpcTimes Measure() {
  RpcTimes times;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "t12"});
  aegis::Aegis kernel(machine);
  aegis::EnvId lrpc_id = aegis::kNoEnv;
  aegis::EnvId tlrpc_id = aegis::kNoEnv;
  cap::Capability lrpc_cap;
  cap::Capability tlrpc_cap;

  auto echo = [](const aegis::PctArgs& args) { return args; };
  exos::Process lrpc_server(kernel, [&](exos::Process& p) {
    exos::InstallLrpcServer(p, echo);
    p.kernel().SysBlock();
  });
  exos::Process tlrpc_server(kernel, [&](exos::Process& p) {
    exos::InstallTlrpcServer(p, echo);
    p.kernel().SysBlock();
  });
  exos::Process client(kernel, [&](exos::Process& p) {
    p.kernel().SysYield(lrpc_id);
    p.kernel().SysYield(tlrpc_id);
    uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)exos::LrpcCall(p, lrpc_id, aegis::PctArgs{});
    }
    times.lrpc = (machine.clock().now() - t0) / kRounds;
    t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)exos::TlrpcCall(p, tlrpc_id, aegis::PctArgs{});
    }
    times.tlrpc = (machine.clock().now() - t0) / kRounds;
    (void)p.kernel().SysWake(lrpc_id, lrpc_cap);
    (void)p.kernel().SysWake(tlrpc_id, tlrpc_cap);
  });
  lrpc_id = lrpc_server.id();
  lrpc_cap = lrpc_server.env_cap();
  tlrpc_id = tlrpc_server.id();
  tlrpc_cap = tlrpc_server.env_cap();
  kernel.Run();
  return times;
}

void PrintPaperTables() {
  const RpcTimes times = Measure();
  Table table("Table 12: extensible RPC (us per call, simulated)",
              {"variant", "time", "vs lrpc"});
  table.AddRow({"lrpc (saves callee-saved)", FmtUs(Us(times.lrpc)), "1.0x"});
  table.AddRow({"tlrpc (trusts server)", FmtUs(Us(times.tlrpc)),
                FmtX(static_cast<double>(times.tlrpc) / times.lrpc)});
  table.Print();
  std::printf("Paper shape check: tlrpc beats lrpc by skipping register saves in\n"
              "the stubs (paper: a noticeable constant per call).\n");
}

void BM_Lrpc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure().lrpc);
  }
  state.counters["sim_us"] = Us(Measure().lrpc);
}
BENCHMARK(BM_Lrpc)->Unit(benchmark::kMillisecond);

void BM_Tlrpc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure().tlrpc);
  }
  state.counters["sim_us"] = Us(Measure().tlrpc);
}
BENCHMARK(BM_Tlrpc)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
