// Ablation: integrated layer processing in ASHs (paper §3.2.1/§6.3: the
// copy+checksum integration "can improve performance by almost a factor of
// two"). We run a vectoring ASH over a sweep of message sizes, once with
// kCopyCksum (one pass over the data) and once as copy-then-checksum (two
// passes), and report simulated cycles per message.
#include "bench/bench_util.h"
#include "src/ash/ash.h"

namespace xok::bench {
namespace {

ash::AshProgram MakeIlp(uint32_t len) {
  Result<ash::AshProgram> handler = ash::BuildVectorAsh(ash::VectorAshSpec{
      .src_off = 0,
      .dst_off = 0,
      .len = len,
      .count_off = len + 8,
      .integrate_cksum = true,
      .cksum_off = len + 4,
  });
  if (!handler.ok()) {
    std::abort();
  }
  return *handler;
}

ash::AshProgram MakeSeparate(uint32_t len) {
  vcode::Emitter e;
  e.Emit(vcode::Op::kLoadImm, 0, 0, 0);
  e.Emit(vcode::Op::kLoadImm, 1, 0, 0);
  e.Emit(vcode::Op::kCopyRegion, 0, 1, len);
  e.Emit(vcode::Op::kCksum, 0, 1, len);  // The second pass ILP avoids.
  e.Emit(vcode::Op::kLoadImm, 3, 0, len + 4);
  e.Emit(vcode::Op::kStoreRegionWord, 3, 15, 0);
  e.Emit(vcode::Op::kAccept, 0, 0, 1);
  Result<ash::AshProgram> handler = ash::AshProgram::Make(e.Finish());
  if (!handler.ok()) {
    std::abort();
  }
  return *handler;
}

uint64_t CyclesPer(const ash::AshProgram& handler, uint32_t len) {
  std::vector<uint8_t> msg(len, 0x5a);
  std::vector<uint8_t> region(len + 64, 0);
  ash::AshServices services;
  uint64_t total = 0;
  constexpr int kIters = 200;
  for (int i = 0; i < kIters; ++i) {
    total += ash::RunAsh(handler, msg, region, services).sim_cycles;
  }
  return total / kIters;
}

void PrintPaperTables() {
  Table table("Ablation: ASH integrated layer processing (us per message, simulated)",
              {"msg bytes", "copy+cksum (ILP)", "copy, then cksum", "speedup"});
  for (uint32_t len : {64u, 256u, 1024u, 1472u}) {
    const uint64_t ilp = CyclesPer(MakeIlp(len), len);
    const uint64_t separate = CyclesPer(MakeSeparate(len), len);
    table.AddRow({std::to_string(len), FmtUs(Us(ilp)), FmtUs(Us(separate)),
                  FmtX(static_cast<double>(separate) / ilp)});
  }
  table.Print();
  std::printf("Paper shape check: the two-pass version approaches 2x the ILP cost\n"
              "as messages grow (data touched twice instead of once).\n");
}

void BM_AshIlp(benchmark::State& state) {
  const uint32_t len = static_cast<uint32_t>(state.range(0));
  ash::AshProgram handler = MakeIlp(len);
  std::vector<uint8_t> msg(len, 0x5a);
  std::vector<uint8_t> region(len + 64, 0);
  ash::AshServices services;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ash::RunAsh(handler, msg, region, services).verdict);
  }
}
BENCHMARK(BM_AshIlp)->Arg(64)->Arg(1024);

void BM_AshSeparate(benchmark::State& state) {
  const uint32_t len = static_cast<uint32_t>(state.range(0));
  ash::AshProgram handler = MakeSeparate(len);
  std::vector<uint8_t> msg(len, 0x5a);
  std::vector<uint8_t> region(len + 64, 0);
  ash::AshServices services;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ash::RunAsh(handler, msg, region, services).verdict);
  }
}
BENCHMARK(BM_AshSeparate)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
