// Ablation: crash consistency as library policy. The journaling LibFS
// pays for durability with journal writes and commit barriers — all of it
// library code over the kernel's single ordering primitive
// (SysDiskBarrier). The ablation baseline is the same LibFS with
// Options::journal_blocks = 0: the original write-back-only file system,
// which a crash-indifferent application is still free to choose. The
// second table prices recovery: mount time as a function of how many
// committed transactions the journal holds.
#include "bench/bench_util.h"
#include "src/exos/fs.h"
#include "src/hw/disk.h"

namespace xok::bench {
namespace {

constexpr size_t kCacheSlots = 8;
constexpr int kRounds = 6;
constexpr int kOpsPerRound = 8;
constexpr uint32_t kOpBytes = 512;  // 8 ops/round = exactly one fresh block.

struct WorkloadResult {
  uint64_t write_cycles = 0;  // Total over all Write calls.
  uint64_t sync_cycles = 0;   // Total over all Sync calls.
  uint64_t journal_writes = 0;
  uint64_t barriers = 0;
  uint64_t txns = 0;
};

WorkloadResult RunWorkload(bool journaled) {
  WorkloadResult result;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "jn"});
  aegis::Aegis kernel(machine);
  hw::Disk disk(machine, 256);
  kernel.AttachDisk(&disk);
  exos::Process proc(kernel, [&](exos::Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel.SysAllocDiskExtent(96);
    if (!extent.ok()) {
      std::abort();
    }
    exos::LibFs::Options options;
    options.cache_slots = kCacheSlots;
    options.journal_blocks = journaled ? exos::LibFs::kDefaultJournalBlocks : 0;
    auto fs = exos::LibFs::Format(p, *extent, options);
    if (!fs.ok()) {
      std::abort();
    }
    Result<exos::FileHandle> log = (*fs)->Create("log");
    if (!log.ok()) {
      std::abort();
    }
    std::vector<uint8_t> chunk(kOpBytes, 0x5a);
    uint32_t offset = 0;
    for (int round = 0; round < kRounds; ++round) {
      // Each append moves the size, so every Write is a metadata commit
      // (and one per round allocates a fresh data block).
      const uint64_t t0 = machine.clock().now();
      for (int op = 0; op < kOpsPerRound; ++op) {
        if ((*fs)->Write(*log, offset, chunk) != Status::kOk) {
          std::abort();
        }
        offset += kOpBytes;
      }
      const uint64_t t1 = machine.clock().now();
      if ((*fs)->Sync() != Status::kOk) {
        std::abort();
      }
      result.write_cycles += t1 - t0;
      result.sync_cycles += machine.clock().now() - t1;
    }
    result.journal_writes = (*fs)->journal_block_writes();
    result.barriers = (*fs)->barriers_issued();
    result.txns = (*fs)->txns_committed();
  });
  kernel.Run();
  return result;
}

struct RecoveryResult {
  uint64_t mount_cycles = 0;
  uint64_t replayed = 0;
};

// Boots a file system, leaves `txns` committed-but-uncheckpointed
// transactions in the journal, "crashes" (the cache's dirty home blocks
// are simply dropped), and measures the remount that replays them.
RecoveryResult RunRecovery(int txns) {
  // A journal roomy enough that no checkpoint interferes: each append
  // transaction records at most superblock + inode table = 4 blocks.
  constexpr uint32_t kBigJournal = 48;
  std::vector<uint8_t> image;
  {
    hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "jn0"});
    aegis::Aegis kernel(machine);
    hw::Disk disk(machine, 256);
    kernel.AttachDisk(&disk);
    exos::Process proc(kernel, [&](exos::Process& p) {
      Result<aegis::Aegis::DiskExtentGrant> extent = kernel.SysAllocDiskExtent(96);
      if (!extent.ok()) {
        std::abort();
      }
      exos::LibFs::Options options;
      options.cache_slots = kCacheSlots;
      options.journal_blocks = kBigJournal;
      auto fs = exos::LibFs::Format(p, *extent, options);
      if (!fs.ok()) {
        std::abort();
      }
      Result<exos::FileHandle> log = (*fs)->Create("log");
      if (!log.ok() || (*fs)->Sync() != Status::kOk) {
        std::abort();
      }
      std::vector<uint8_t> chunk(kOpBytes, 0x5a);
      for (int i = 0; i < txns; ++i) {
        if ((*fs)->Write(*log, i * kOpBytes, chunk) != Status::kOk) {
          std::abort();
        }
      }
      // No Sync: the journal holds `txns` committed transactions and the
      // home locations are stale — exactly the post-crash shape.
    });
    kernel.Run();
    image = disk.TakeImage();
  }

  RecoveryResult result;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "jn1"});
  aegis::Aegis kernel(machine);
  hw::Disk disk(machine, 256);
  if (disk.RestoreImage(image) != Status::kOk) {
    std::abort();
  }
  kernel.AttachDisk(&disk);
  exos::Process proc(kernel, [&](exos::Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel.SysAllocDiskExtent(96);
    if (!extent.ok()) {
      std::abort();
    }
    const uint64_t t0 = machine.clock().now();
    auto fs = exos::LibFs::Mount(p, *extent, kCacheSlots);
    if (!fs.ok()) {
      std::abort();
    }
    result.mount_cycles = machine.clock().now() - t0;
    result.replayed = (*fs)->txns_replayed();
  });
  kernel.Run();
  return result;
}

void PrintPaperTables() {
  const WorkloadResult journaled = RunWorkload(/*journaled=*/true);
  const WorkloadResult baseline = RunWorkload(/*journaled=*/false);
  const int ops = kRounds * kOpsPerRound;
  Table table("Ablation: journaling LibFS vs write-back baseline "
              "(append workload, Sync per round)",
              {"file system", "write (us/op)", "sync (us/Sync)", "journal wr", "barriers",
               "txns"});
  table.AddRow({"journaled", FmtUs(Us(journaled.write_cycles) / ops),
                FmtUs(Us(journaled.sync_cycles) / kRounds),
                std::to_string(journaled.journal_writes), std::to_string(journaled.barriers),
                std::to_string(journaled.txns)});
  table.AddRow({"write-back only", FmtUs(Us(baseline.write_cycles) / ops),
                FmtUs(Us(baseline.sync_cycles) / kRounds),
                std::to_string(baseline.journal_writes), std::to_string(baseline.barriers),
                std::to_string(baseline.txns)});
  table.Print();
  std::printf("Durability is priced in library code: the journal costs %.1fx on the\n"
              "write path, and an application that does not want crash consistency\n"
              "simply links the baseline policy — the kernel only ever saw extents\n"
              "and barriers.\n",
              static_cast<double>(journaled.write_cycles) / baseline.write_cycles);

  Table recovery("Mount-time recovery vs journal length", {"txns in journal", "replayed",
                                                           "mount (ms sim)"});
  for (const int txns : {0, 3, 6, 9}) {
    const RecoveryResult r = RunRecovery(txns);
    recovery.AddRow({std::to_string(txns), std::to_string(r.replayed),
                     FmtUs(Us(r.mount_cycles) / 1000.0)});
  }
  recovery.Print();
}

void BM_JournaledAppendSync(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWorkload(true).sync_cycles);
  }
}
BENCHMARK(BM_JournaledAppendSync)->Unit(benchmark::kMillisecond);

void BM_WritebackAppendSync(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWorkload(false).sync_cycles);
  }
}
BENCHMARK(BM_WritebackAppendSync)->Unit(benchmark::kMillisecond);

void BM_MountReplay(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunRecovery(static_cast<int>(state.range(0))).mount_cycles);
  }
}
BENCHMARK(BM_MountReplay)->Arg(0)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
