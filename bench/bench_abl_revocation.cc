// Ablation: visible revocation vs the abort protocol (paper §3.4–3.5).
// Reclaiming N pages from a *compliant* library OS (its revoke handler
// picks victims and deallocates) versus a non-compliant one (the kernel
// repossesses by force and the libOS must repair its page table from the
// repossession vector afterwards). Visible revocation costs more kernel
// time up front but leaves the libOS consistent; the abort protocol is
// fast for the kernel and pushes repair cost (and lost state) to the app.
#include "bench/bench_util.h"
#include "src/exos/process.h"

namespace xok::bench {
namespace {

constexpr int kOwned = 64;
constexpr hw::Vaddr kBase = 0x1000000;

struct RevokeCost {
  uint64_t revoke_cycles = 0;  // Kernel-side reclaim.
  uint64_t repair_cycles = 0;  // App-side repair afterwards.
};

RevokeCost Measure(bool compliant, uint32_t reclaim) {
  RevokeCost cost;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "rev"});
  aegis::Aegis kernel(machine);
  exos::Process proc(kernel, [&](exos::Process& p) {
    for (int i = 0; i < kOwned; ++i) {
      (void)p.vm().Map(kBase + i * hw::kPageBytes, exos::kProtWrite);
      (void)machine.StoreWord(kBase + i * hw::kPageBytes, i);
    }
    if (!compliant) {
      p.set_revoke_handler([](uint32_t) {});  // Refuse: force the abort path.
    }
    uint64_t t0 = machine.clock().now();
    (void)kernel.RevokePages(p.id(), reclaim);
    cost.revoke_cycles = machine.clock().now() - t0;

    t0 = machine.clock().now();
    std::vector<hw::PageId> taken = kernel.SysReadRepossessed();
    p.vm().RepairAfterRepossession(taken);
    cost.repair_cycles = machine.clock().now() - t0;
  });
  kernel.Run();
  return cost;
}

void PrintPaperTables() {
  Table table("Ablation: visible revocation vs abort protocol (us, simulated)",
              {"pages", "visible reclaim", "abort reclaim", "abort repair"});
  for (uint32_t n : {4u, 16u, 32u}) {
    const RevokeCost visible = Measure(/*compliant=*/true, n);
    const RevokeCost abort_cost = Measure(/*compliant=*/false, n);
    table.AddRow({std::to_string(n), FmtUs(Us(visible.revoke_cycles)),
                  FmtUs(Us(abort_cost.revoke_cycles)), FmtUs(Us(abort_cost.repair_cycles))});
  }
  table.Print();
  std::printf("Visible revocation lets the library OS choose victims (clean pages\n"
              "first); the abort protocol breaks bindings by force and leaves the\n"
              "repossession vector for the application to repair from.\n");
}

void BM_VisibleRevocation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(true, 16).revoke_cycles);
  }
}
BENCHMARK(BM_VisibleRevocation)->Unit(benchmark::kMillisecond);

void BM_AbortProtocol(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(false, 16).revoke_cycles);
  }
}
BENCHMARK(BM_AbortProtocol)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
