// Ablation: application throughput under revocation pressure. A repair-
// aware library OS (RevocationClient: revoke handler + Poll) works a
// 16-page set while the kernel's pressure engine runs seeded revocation
// campaigns of increasing intensity against it. Three windows per run:
// baseline (no pressure), storm, and post-storm recovery after one repair
// pass. The robustness contract is the last column: once the storm ends,
// throughput must come back to >= 90% of baseline — pressure may slow an
// application while it lasts but must not leave it degraded.
#include "bench/bench_util.h"
#include "src/core/pressure.h"
#include "src/exos/process.h"
#include "src/exos/revocation.h"

namespace xok::bench {
namespace {

constexpr int kPages = 16;
constexpr hw::Vaddr kBase = 0x1000000;
constexpr uint64_t kWindow = 1'000'000;  // Cycles per measurement window.
constexpr uint64_t kStormStart = kWindow;
constexpr uint64_t kStormEnd = 3 * kWindow;

struct PressureRun {
  uint64_t baseline_rounds = 0;  // [0, 1M): no pressure.
  uint64_t storm_rounds = 0;     // [1M, 3M): the campaign, halved per-window.
  uint64_t recovery_rounds = 0;  // [3M, 4M): after one repair pass.
  uint64_t pages_repossessed = 0;
  uint64_t bursts = 0;
};

PressureRun Measure(uint32_t pages_per_burst, uint64_t period) {
  PressureRun run;
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "pressure"});
  aegis::Aegis kernel(machine);
  exos::Process proc(kernel, [&](exos::Process& p) {
    exos::RevocationClient rc(p, {});
    for (int i = 0; i < kPages; ++i) {
      (void)p.vm().Map(kBase + i * hw::kPageBytes, exos::kProtWrite);
      (void)machine.StoreWord(kBase + i * hw::kPageBytes, i);
    }
    bool repaired_after_storm = false;
    for (;;) {
      const uint64_t now = p.kernel().SysGetCycles();
      if (now >= kStormEnd + kWindow) {
        break;
      }
      if (now >= kStormEnd && !repaired_after_storm) {
        (void)rc.Poll();  // One repair pass; recovery is measured after it.
        repaired_after_storm = true;
        continue;
      }
      (void)rc.Poll();
      for (int i = 0; i < kPages; ++i) {
        // Mid-storm stores may hit a repossessed mapping; tolerated — the
        // next Poll repairs the page table.
        (void)machine.StoreWord(kBase + i * hw::kPageBytes,
                                static_cast<uint32_t>(now + i));
      }
      if (now < kStormStart) {
        ++run.baseline_rounds;
      } else if (now < kStormEnd) {
        ++run.storm_rounds;
      } else {
        ++run.recovery_rounds;
      }
      p.kernel().SysSleep(2'000);
    }
    run.pages_repossessed = rc.stats().pages_repossessed;
  });
  if (pages_per_burst > 0) {
    aegis::PressurePlan plan;
    plan.seed = 42;
    plan.Storm(kStormStart, kStormEnd, period, pages_per_burst);
    kernel.InstallPressurePlan(plan);
  }
  kernel.Run();
  if (const aegis::PressureStats* stats = kernel.pressure_stats()) {
    run.bursts = stats->bursts;
  }
  return run;
}

double Pct(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

void PrintPaperTables() {
  Table table("Ablation: throughput under revocation pressure (rounds/1M cycles)",
              {"burst pages/period", "baseline", "storm", "storm %", "recovery %"});
  struct Level {
    const char* label;
    uint32_t pages;
    uint64_t period;
  };
  bool recovered = true;
  for (const Level& level : {Level{"none", 0, 0},
                             Level{"2 / 200k", 2, 200'000},
                             Level{"4 / 100k", 4, 100'000},
                             Level{"8 / 50k", 8, 50'000}}) {
    const PressureRun run = Measure(level.pages, level.period);
    const uint64_t storm_per_window = run.storm_rounds / 2;  // 2M-cycle window.
    const double recovery_pct = Pct(run.recovery_rounds, run.baseline_rounds);
    recovered = recovered && recovery_pct >= 90.0;
    table.AddRow({level.label, std::to_string(run.baseline_rounds),
                  std::to_string(storm_per_window),
                  FmtUs(Pct(storm_per_window, run.baseline_rounds)) + "%",
                  FmtUs(recovery_pct) + "%"});
  }
  table.Print();
  std::printf("Pressure costs throughput only while it lasts: after the storm one\n"
              "Poll() repairs the page table and the working set refaults in.\n"
              "Post-storm recovery >= 90%% of baseline: %s\n",
              recovered ? "yes" : "NO (regression)");
}

void BM_StormThroughput(benchmark::State& state) {
  for (auto _ : state) {
    const PressureRun run = Measure(4, 100'000);
    benchmark::DoNotOptimize(run.storm_rounds);
    state.counters["recovery_pct"] = Pct(run.recovery_rounds, run.baseline_rounds);
    state.counters["repossessed"] = static_cast<double>(run.pages_repossessed);
  }
}
BENCHMARK(BM_StormThroughput)->Unit(benchmark::kMillisecond);

void BM_UnpressuredBaseline(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(0, 0).baseline_rounds);
  }
}
BENCHMARK(BM_UnpressuredBaseline)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
