// Table 8 (reconstructed): ExOS IPC abstractions vs Ultrix — pipe (POSIX-
// emulating ring), pipe' (native ring), shm (shared-memory word exchange),
// and lrpc (PCT-based RPC). The workload is the paper's: ping-pong a word
// between two processes; time is per roundtrip.
#include "bench/bench_util.h"
#include "src/exos/ipc.h"

namespace xok::bench {
namespace {

constexpr int kRounds = 1'000;
constexpr hw::Vaddr kRingAB = 0x5000000;  // a -> b ring.
constexpr hw::Vaddr kRingBA = 0x5100000;  // b -> a ring.

// ExOS pipe roundtrip: two rings, one per direction.
uint64_t MeasureExosPipe(bool posix_emulation) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "t8"});
  aegis::Aegis kernel(machine);
  exos::SharedBufferDesc ab;
  exos::SharedBufferDesc ba;
  bool ready = false;
  uint64_t per_roundtrip = 0;
  exos::PipePeer peer_a;
  exos::PipePeer peer_b;

  exos::Process a(kernel, [&](exos::Process& p) {
    ab = *exos::CreateSharedBuffer(p);
    ba = *exos::CreateSharedBuffer(p);
    (void)exos::MapSharedBuffer(p, ab, kRingAB);
    (void)exos::MapSharedBuffer(p, ba, kRingBA);
    ready = true;
    exos::PipeEndpoint out(p, kRingAB, peer_a, posix_emulation);
    exos::PipeEndpoint in(p, kRingBA, peer_a, posix_emulation);
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)out.WriteWord(i);
      (void)in.ReadWord();
    }
    per_roundtrip = (machine.clock().now() - t0) / kRounds;
  });
  exos::Process b(kernel, [&](exos::Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    (void)exos::MapSharedBuffer(p, ab, kRingAB);
    (void)exos::MapSharedBuffer(p, ba, kRingBA);
    exos::PipeEndpoint in(p, kRingAB, peer_b, posix_emulation);
    exos::PipeEndpoint out(p, kRingBA, peer_b, posix_emulation);
    for (int i = 0; i < kRounds; ++i) {
      Result<uint32_t> v = in.ReadWord();
      (void)out.WriteWord(v.value_or(0));
    }
  });
  peer_a = {b.id(), b.env_cap()};
  peer_b = {a.id(), a.env_cap()};
  kernel.Run();
  return per_roundtrip;
}

// shm: flip a word in shared memory, wait for the peer to flip it back.
uint64_t MeasureExosShm() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "t8s"});
  aegis::Aegis kernel(machine);
  exos::SharedBufferDesc desc;
  bool ready = false;
  uint64_t per_roundtrip = 0;
  aegis::EnvId id_a = aegis::kNoEnv;
  aegis::EnvId id_b = aegis::kNoEnv;

  exos::Process a(kernel, [&](exos::Process& p) {
    desc = *exos::CreateSharedBuffer(p);
    (void)exos::MapSharedBuffer(p, desc, kRingAB);
    ready = true;
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)machine.StoreWord(kRingAB, 2 * i + 1);
      while (machine.LoadWord(kRingAB).value_or(0) != static_cast<uint32_t>(2 * i + 2)) {
        p.kernel().SysYield(id_b);
      }
    }
    per_roundtrip = (machine.clock().now() - t0) / kRounds;
  });
  exos::Process b(kernel, [&](exos::Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    (void)exos::MapSharedBuffer(p, desc, kRingAB);
    for (int i = 0; i < kRounds; ++i) {
      while (machine.LoadWord(kRingAB).value_or(0) != static_cast<uint32_t>(2 * i + 1)) {
        p.kernel().SysYield(id_a);
      }
      (void)machine.StoreWord(kRingAB, 2 * i + 2);
    }
  });
  id_a = a.id();
  id_b = b.id();
  kernel.Run();
  return per_roundtrip;
}

uint64_t MeasureExosLrpc() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "t8l"});
  aegis::Aegis kernel(machine);
  uint64_t per_call = 0;
  aegis::EnvId server_id = aegis::kNoEnv;
  cap::Capability server_cap;
  exos::Process server(kernel, [&](exos::Process& p) {
    exos::InstallLrpcServer(p, [](const aegis::PctArgs& args) { return args; });
    p.kernel().SysBlock();
  });
  exos::Process client(kernel, [&](exos::Process& p) {
    p.kernel().SysYield(server_id);
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)exos::LrpcCall(p, server_id, aegis::PctArgs{});
    }
    per_call = (machine.clock().now() - t0) / kRounds;
    (void)p.kernel().SysWake(server_id, server_cap);
  });
  server_id = server.id();
  server_cap = server.env_cap();
  kernel.Run();
  return per_call;
}

// Ultrix pipe roundtrip: two kernel pipes, one per direction.
uint64_t MeasureUltrixPipe() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "t8u"});
  ultrix::Ultrix kernel(machine);
  int ab_r = -1, ab_w = -1, ba_r = -1, ba_w = -1;
  bool ready = false;
  uint64_t per_roundtrip = 0;
  (void)kernel.CreateProcess([&] {
    auto p1 = kernel.SysPipe();
    auto p2 = kernel.SysPipe();
    ab_r = p1->first;
    ab_w = p1->second;
    ba_r = p2->first;
    ba_w = p2->second;
    ready = true;
    uint8_t word[4] = {1, 2, 3, 4};
    uint8_t in[4];
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)kernel.SysWrite(ab_w, word);
      (void)kernel.SysRead(ba_r, in);
    }
    per_roundtrip = (machine.clock().now() - t0) / kRounds;
  });
  (void)kernel.CreateProcess([&] {
    while (!ready) {
      kernel.SysYield();
    }
    uint8_t buf[4];
    for (int i = 0; i < kRounds; ++i) {
      (void)kernel.SysRead(ab_r, buf);
      (void)kernel.SysWrite(ba_w, buf);
    }
  });
  kernel.Run();
  return per_roundtrip;
}

void PrintPaperTables() {
  const uint64_t pipe_us = MeasureExosPipe(/*posix_emulation=*/true);
  const uint64_t fast_pipe_us = MeasureExosPipe(/*posix_emulation=*/false);
  const uint64_t shm_us = MeasureExosShm();
  const uint64_t lrpc_us = MeasureExosLrpc();
  const uint64_t ultrix_pipe_us = MeasureUltrixPipe();

  Table table("Table 8 (reconstructed): IPC roundtrip (us, simulated)",
              {"abstraction", "ExOS", "Ultrix", "Ultrix/ExOS"});
  table.AddRow({"pipe", FmtUs(Us(pipe_us)), FmtUs(Us(ultrix_pipe_us)),
                FmtX(static_cast<double>(ultrix_pipe_us) / pipe_us)});
  table.AddRow({"pipe' (native ring)", FmtUs(Us(fast_pipe_us)), FmtUs(Us(ultrix_pipe_us)),
                FmtX(static_cast<double>(ultrix_pipe_us) / fast_pipe_us)});
  table.AddRow({"shm", FmtUs(Us(shm_us)), "-", "-"});
  table.AddRow({"lrpc", FmtUs(Us(lrpc_us)), "-", "-"});
  table.Print();
  std::printf("Paper shape check: ExOS IPC 5-40x under Ultrix pipes.\n");
}

void BM_ExosPipeRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureExosPipe(true));
  }
  state.counters["sim_us"] = Us(MeasureExosPipe(true));
}
BENCHMARK(BM_ExosPipeRoundtrip)->Unit(benchmark::kMillisecond);

void BM_UltrixPipeRoundtrip(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureUltrixPipe());
  }
  state.counters["sim_us"] = Us(MeasureUltrixPipe());
}
BENCHMARK(BM_UltrixPipeRoundtrip)->Unit(benchmark::kMillisecond);

void BM_ExosLrpc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureExosLrpc());
  }
  state.counters["sim_us"] = Us(MeasureExosLrpc());
}
BENCHMARK(BM_ExosLrpc)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
