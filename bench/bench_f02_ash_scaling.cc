// Figure (reconstructed): average roundtrip latency as the number of
// CPU-bound background processes on the *receiver* grows. Without ASHs the
// echo server must wait its turn in the slice vector, so latency grows
// linearly with receiver load; the ASH replies at interrupt level and the
// curve stays flat. This is the paper's "decouple latency-critical
// operations from process scheduling" claim, measured.
#include "bench/bench_util.h"
#include "src/exos/udp.h"
#include "src/hw/world.h"

namespace xok::bench {
namespace {

constexpr int kRounds = 64;
constexpr uint16_t kClientPort = 100;
constexpr uint16_t kServerPort = 200;

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

uint64_t Measure(bool use_ash, int background_procs) {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "cli"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "srv"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Wire wire;
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  bool done = false;
  uint64_t per_roundtrip = 0;
  exos::Process client(ka, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    if (socket.Bind(kClientPort) != Status::kOk) {
      std::abort();
    }
    p.kernel().SysSleep(hw::kClockHz / 100);
    std::vector<uint8_t> counter = {0, 0, 0, 0};
    const uint64_t t0 = ma.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)socket.SendTo(2, kServerPort, counter);
      Result<exos::Datagram> reply = socket.Recv();
      if (!reply.ok()) {
        std::abort();
      }
    }
    per_roundtrip = (ma.clock().now() - t0) / kRounds;
    done = true;
  });

  // Receiver-side background load: compute-bound environments.
  std::vector<std::unique_ptr<exos::Process>> background;
  for (int i = 0; i < background_procs; ++i) {
    background.push_back(std::make_unique<exos::Process>(kb, [&](exos::Process& p) {
      while (!done) {
        p.machine().Charge(hw::Instr(200));
      }
    }));
    if (!background.back()->ok()) {
      std::abort();
    }
  }

  exos::Process server(kb, [&](exos::Process& p) {
    if (use_ash) {
      exos::AshEchoConfig config;
      config.iface = exos::NetIface{0xb, 2, Resolve};
      config.port = kServerPort;
      config.peer_ip = 1;
      config.peer_port = kClientPort;
      if (!exos::BindEchoAsh(p, config).ok()) {
        std::abort();
      }
      while (!done) {
        p.kernel().SysSleep(hw::kClockHz / 10);
      }
    } else {
      exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
      if (socket.Bind(kServerPort) != Status::kOk) {
        std::abort();
      }
      for (int i = 0; i < kRounds; ++i) {
        Result<exos::Datagram> request = socket.Recv();
        if (!request.ok()) {
          std::abort();
        }
        std::vector<uint8_t> bumped(4);
        net::PutBe32(bumped, 0, net::GetBe32(request->payload, 0) + 1);
        (void)socket.SendTo(request->src_ip, request->src_port, bumped);
      }
    }
  });
  if (!client.ok() || !server.ok()) {
    std::abort();
  }
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  return per_roundtrip;
}

void PrintPaperTables() {
  Table table("Figure: roundtrip latency vs active processes on receiver (us, simulated)",
              {"bg procs", "ExOS+ASH", "ExOS no-ASH", "no-ASH/ASH"});
  for (int n : {0, 1, 2, 4, 6, 8}) {
    const uint64_t ash = Measure(/*use_ash=*/true, n);
    const uint64_t no_ash = Measure(/*use_ash=*/false, n);
    table.AddRow({std::to_string(n), FmtUs(Us(ash)), FmtUs(Us(no_ash)),
                  FmtX(static_cast<double>(no_ash) / ash)});
  }
  table.Print();
  std::printf("Paper shape check: the ASH column is flat; the no-ASH column grows\n"
              "with receiver load (reply waits for the server's time slice).\n");
}

void BM_AshLatencyLoaded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(true, n));
  }
  state.counters["sim_us"] = Us(Measure(true, n));
}
BENCHMARK(BM_AshLatencyLoaded)->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_NoAshLatencyLoaded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Measure(false, n));
  }
  state.counters["sim_us"] = Us(Measure(false, n));
}
BENCHMARK(BM_NoAshLatencyLoaded)->Arg(0)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
