// Shared infrastructure for the paper-reproduction benchmarks.
//
// Every bench binary does two things:
//   1. Prints its paper table/figure, computed from *simulated cycles* on
//      the modelled DECstation 5000/125 (deterministic, comparable to the
//      paper's microsecond numbers in shape).
//   2. Runs google-benchmark wall-clock measurements of the same
//      operations (the real cost of the C++ implementations on the host),
//      attaching a `sim_us` counter per benchmark.
#ifndef XOK_BENCH_BENCH_UTIL_H_
#define XOK_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/hw/machine.h"
#include "src/ultrix/ultrix.h"

namespace xok::bench {

inline double Us(uint64_t cycles) { return hw::CyclesToMicros(cycles); }

// Runs `body` inside a single Aegis environment on a fresh machine.
// The body performs its own interval measurements via the machine clock.
inline void RunOnAegis(const std::function<void(aegis::Aegis&, hw::Machine&)>& body,
                       uint32_t phys_pages = 2048) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = phys_pages, .name = "bench"});
  aegis::Aegis kernel(machine);
  aegis::EnvSpec spec;
  spec.entry = [&] { body(kernel, machine); };
  if (!kernel.CreateEnv(std::move(spec)).ok()) {
    std::fprintf(stderr, "bench: CreateEnv failed\n");
    std::abort();
  }
  kernel.Run();
}

// Runs `body` inside a single ExOS process (full library OS handlers).
inline void RunOnExos(const std::function<void(exos::Process&)>& body,
                      uint32_t phys_pages = 2048) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = phys_pages, .name = "bench"});
  aegis::Aegis kernel(machine);
  exos::Process proc(kernel, [&](exos::Process& p) { body(p); });
  if (!proc.ok()) {
    std::fprintf(stderr, "bench: Process creation failed\n");
    std::abort();
  }
  kernel.Run();
}

// Runs `body` inside a single Ultrix process on a fresh machine.
inline void RunOnUltrix(const std::function<void(ultrix::Ultrix&, hw::Machine&)>& body,
                        uint32_t phys_pages = 2048) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = phys_pages, .name = "bench"});
  ultrix::Ultrix kernel(machine);
  if (!kernel.CreateProcess([&] { body(kernel, machine); }).ok()) {
    std::fprintf(stderr, "bench: CreateProcess failed\n");
    std::abort();
  }
  kernel.Run();
}

// Paper-style table printing.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    PrintCells(columns_);
    std::printf("%s\n", std::string(16 * columns_.size(), '-').c_str());
    for (const auto& row : rows_) {
      PrintCells(row);
    }
    std::printf("\n");
  }

 private:
  static void PrintCells(const std::vector<std::string>& cells) {
    for (const auto& cell : cells) {
      std::printf("%-16s", cell.c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FmtUs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", us);
  return buf;
}

inline std::string FmtX(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", ratio);
  return buf;
}

// Standard main: print the paper table, then run google-benchmark.
#define XOK_BENCH_MAIN(PrintPaperTables)                  \
  int main(int argc, char** argv) {                       \
    PrintPaperTables();                                   \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }

}  // namespace xok::bench

#endif  // XOK_BENCH_BENCH_UTIL_H_
