// Shared infrastructure for the paper-reproduction benchmarks.
//
// Every bench binary does two things:
//   1. Prints its paper table/figure, computed from *simulated cycles* on
//      the modelled DECstation 5000/125 (deterministic, comparable to the
//      paper's microsecond numbers in shape).
//   2. Runs google-benchmark wall-clock measurements of the same
//      operations (the real cost of the C++ implementations on the host),
//      attaching a `sim_us` counter per benchmark.
#ifndef XOK_BENCH_BENCH_UTIL_H_
#define XOK_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/exos/tracelib.h"
#include "src/hw/machine.h"
#include "src/ultrix/ultrix.h"

namespace xok::bench {

inline double Us(uint64_t cycles) { return hw::CyclesToMicros(cycles); }

// --- Optional kernel tracing: --xok_trace=PATH ---
//
// When the flag is present, every RunOnAegis/RunOnExos boot arms an xtrace
// ring before the workload runs; after all benchmarks finish, the merged
// event summary is written to PATH as JSON (the observability sidecar next
// to each BENCH_*.json). Armed tracing costs kTraceArmedSyscall per traced
// syscall, so expect slightly higher sim numbers in this mode — that cost
// is itself measured by bench_abl_trace.
struct TraceCapture {
  bool enabled = false;
  std::string path;
  exos::TraceSummary summary;
  uint64_t sessions = 0;
};

inline TraceCapture& GlobalTraceCapture() {
  static TraceCapture capture;
  return capture;
}

// Strips --xok_trace=PATH from argv (google-benchmark rejects unknown
// flags) and records it. Call before benchmark::Initialize.
inline void ParseTraceFlag(int* argc, char** argv) {
  const std::string prefix = "--xok_trace=";
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      GlobalTraceCapture().enabled = true;
      GlobalTraceCapture().path = arg.substr(prefix.size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
}

// Arms the trace ring from inside the boot environment. A fresh machine
// hands out frames from the bottom, so kAnyPage allocations come back
// contiguous — but verify, and give up quietly if the run is fragmented.
inline void ArmTraceRing(aegis::Aegis& kernel, std::vector<aegis::PageGrant>& pages) {
  if (!GlobalTraceCapture().enabled) {
    return;
  }
  constexpr uint32_t kTracePages = 8;
  for (uint32_t i = 0; i < kTracePages; ++i) {
    Result<aegis::PageGrant> grant = kernel.SysAllocPage(aegis::kAnyPage);
    if (!grant.ok() || (!pages.empty() && grant->page != pages.back().page + 1)) {
      for (const aegis::PageGrant& g : pages) {
        (void)kernel.SysDeallocPage(g.page, g.cap);
      }
      pages.clear();
      return;
    }
    pages.push_back(*grant);
  }
  aegis::TraceRingSpec spec;
  spec.first_page = pages.front().page;
  spec.pages = kTracePages;
  spec.mask = xtrace::kMaskAll;
  if (kernel.SysBindTraceRing(spec, pages.front().cap) != Status::kOk) {
    for (const aegis::PageGrant& g : pages) {
      (void)kernel.SysDeallocPage(g.page, g.cap);
    }
    pages.clear();
  }
}

// Post-run harvest: decode the ring straight out of simulated RAM (the
// boot env exited cleanly, so the binding and pages persist) and fold the
// records into the global summary.
inline void HarvestTraceRing(hw::Machine& machine, const std::vector<aegis::PageGrant>& pages) {
  if (pages.empty()) {
    return;
  }
  std::span<uint8_t> region =
      machine.mem().RangeSpan(pages.front().page, static_cast<uint32_t>(pages.size()));
  Result<std::vector<xtrace::Record>> records = exos::DecodeRegion(region);
  if (records.ok()) {
    for (const xtrace::Record& record : *records) {
      GlobalTraceCapture().summary.Add(record);
    }
  }
  Result<xtrace::TraceRingView> view = xtrace::TraceRingView::AttachExisting(region);
  if (view.ok()) {
    GlobalTraceCapture().summary.dropped += view->dropped();
  }
  ++GlobalTraceCapture().sessions;
}

inline void WriteTraceJson() {
  TraceCapture& capture = GlobalTraceCapture();
  if (!capture.enabled) {
    return;
  }
  std::FILE* f = std::fopen(capture.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", capture.path.c_str());
    return;
  }
  std::fprintf(f, "{\"sessions\": %llu, \"summary\": %s}\n",
               static_cast<unsigned long long>(capture.sessions),
               exos::SummaryToJson(capture.summary).c_str());
  std::fclose(f);
  std::printf("wrote trace summary: %s (%llu records, %llu sessions)\n", capture.path.c_str(),
              static_cast<unsigned long long>(capture.summary.records),
              static_cast<unsigned long long>(capture.sessions));
}

// Runs `body` inside a single Aegis environment on a fresh machine.
// The body performs its own interval measurements via the machine clock.
inline void RunOnAegis(const std::function<void(aegis::Aegis&, hw::Machine&)>& body,
                       uint32_t phys_pages = 2048) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = phys_pages, .name = "bench"});
  aegis::Aegis kernel(machine);
  std::vector<aegis::PageGrant> trace_pages;
  aegis::EnvSpec spec;
  spec.entry = [&] {
    ArmTraceRing(kernel, trace_pages);
    body(kernel, machine);
  };
  if (!kernel.CreateEnv(std::move(spec)).ok()) {
    std::fprintf(stderr, "bench: CreateEnv failed\n");
    std::abort();
  }
  kernel.Run();
  HarvestTraceRing(machine, trace_pages);
}

// Runs `body` inside a single ExOS process (full library OS handlers).
inline void RunOnExos(const std::function<void(exos::Process&)>& body,
                      uint32_t phys_pages = 2048) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = phys_pages, .name = "bench"});
  aegis::Aegis kernel(machine);
  std::vector<aegis::PageGrant> trace_pages;
  exos::Process proc(kernel, [&](exos::Process& p) {
    ArmTraceRing(kernel, trace_pages);
    body(p);
  });
  if (!proc.ok()) {
    std::fprintf(stderr, "bench: Process creation failed\n");
    std::abort();
  }
  kernel.Run();
  HarvestTraceRing(machine, trace_pages);
}

// Runs `body` inside a single Ultrix process on a fresh machine.
inline void RunOnUltrix(const std::function<void(ultrix::Ultrix&, hw::Machine&)>& body,
                        uint32_t phys_pages = 2048) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = phys_pages, .name = "bench"});
  ultrix::Ultrix kernel(machine);
  if (!kernel.CreateProcess([&] { body(kernel, machine); }).ok()) {
    std::fprintf(stderr, "bench: CreateProcess failed\n");
    std::abort();
  }
  kernel.Run();
}

// Paper-style table printing.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void Print() const {
    std::printf("\n=== %s ===\n", title_.c_str());
    PrintCells(columns_);
    std::printf("%s\n", std::string(16 * columns_.size(), '-').c_str());
    for (const auto& row : rows_) {
      PrintCells(row);
    }
    std::printf("\n");
  }

 private:
  static void PrintCells(const std::vector<std::string>& cells) {
    for (const auto& cell : cells) {
      std::printf("%-16s", cell.c_str());
    }
    std::printf("\n");
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string FmtUs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", us);
  return buf;
}

inline std::string FmtX(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", ratio);
  return buf;
}

// Standard main: print the paper table, then run google-benchmark.
// Understands --xok_trace=PATH (stripped before benchmark::Initialize).
#define XOK_BENCH_MAIN(PrintPaperTables)                  \
  int main(int argc, char** argv) {                       \
    ::xok::bench::ParseTraceFlag(&argc, argv);            \
    PrintPaperTables();                                   \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    ::xok::bench::WriteTraceJson();                       \
    return 0;                                             \
  }

}  // namespace xok::bench

#endif  // XOK_BENCH_BENCH_UTIL_H_
