// Table 2: null procedure call and null system call, Aegis vs Ultrix.
// The paper's headline: Aegis kernel crossings cost little more than a
// procedure call; Ultrix pays the full monolithic trap + syscall layer.
#include "bench/bench_util.h"

namespace xok::bench {
namespace {

constexpr int kIters = 10'000;

// A "procedure call" on the simulated machine: call + frame + return.
uint64_t MeasureProcedureCall(hw::Machine& machine) {
  const uint64_t t0 = machine.clock().now();
  for (int i = 0; i < kIters; ++i) {
    machine.Charge(hw::Instr(7));
  }
  return (machine.clock().now() - t0) / kIters;
}

struct Numbers {
  uint64_t proc_call = 0;
  uint64_t aegis_syscall = 0;
  uint64_t ultrix_syscall = 0;
};

Numbers Collect() {
  Numbers numbers;
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    numbers.proc_call = MeasureProcedureCall(machine);
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      kernel.SysNull();
    }
    numbers.aegis_syscall = (machine.clock().now() - t0) / kIters;
  });
  RunOnUltrix([&](ultrix::Ultrix& kernel, hw::Machine& machine) {
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kIters; ++i) {
      kernel.SysNull();
    }
    numbers.ultrix_syscall = (machine.clock().now() - t0) / kIters;
  });
  return numbers;
}

void PrintPaperTables() {
  const Numbers numbers = Collect();
  Table table("Table 2: null procedure and system call (us, simulated)",
              {"operation", "Aegis", "Ultrix", "Ultrix/Aegis"});
  table.AddRow({"procedure call", FmtUs(Us(numbers.proc_call)), "-", "-"});
  table.AddRow({"null syscall", FmtUs(Us(numbers.aegis_syscall)),
                FmtUs(Us(numbers.ultrix_syscall)),
                FmtX(static_cast<double>(numbers.ultrix_syscall) / numbers.aegis_syscall)});
  table.Print();
}

void BM_AegisNullSyscall(benchmark::State& state) {
  uint64_t sim = 0;
  uint64_t n = 0;
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    const uint64_t t0 = machine.clock().now();
    for (auto _ : state) {
      kernel.SysNull();
      ++n;
    }
    sim = machine.clock().now() - t0;
  });
  state.counters["sim_us"] = n > 0 ? Us(sim) / static_cast<double>(n) : 0;
}
BENCHMARK(BM_AegisNullSyscall);

void BM_UltrixNullSyscall(benchmark::State& state) {
  uint64_t sim = 0;
  uint64_t n = 0;
  RunOnUltrix([&](ultrix::Ultrix& kernel, hw::Machine& machine) {
    const uint64_t t0 = machine.clock().now();
    for (auto _ : state) {
      kernel.SysNull();
      ++n;
    }
    sim = machine.clock().now() - t0;
  });
  state.counters["sim_us"] = n > 0 ? Us(sim) / static_cast<double>(n) : 0;
}
BENCHMARK(BM_UltrixNullSyscall);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
