// Table 3: a sample of Aegis's primitive operations — the guaranteed-
// register pseudo-instructions (like Alpha PALcode) plus the bind-time
// memory operations. All times are simulated microseconds per operation.
#include "bench/bench_util.h"

namespace xok::bench {
namespace {

constexpr int kIters = 4'000;

template <typename Fn>
uint64_t PerOp(hw::Machine& machine, Fn&& fn) {
  const uint64_t t0 = machine.clock().now();
  for (int i = 0; i < kIters; ++i) {
    fn(i);
  }
  return (machine.clock().now() - t0) / kIters;
}

void PrintPaperTables() {
  Table table("Table 3: Aegis primitive operations (us, simulated)", {"operation", "time"});
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    table.AddRow({"GetCycles (rdcycle)",
                  FmtUs(Us(PerOp(machine, [&](int) { kernel.SysGetCycles(); })))});
    table.AddRow(
        {"GetSelf (env id)", FmtUs(Us(PerOp(machine, [&](int) { kernel.SysSelf(); })))});
    table.AddRow(
        {"CpuSlices", FmtUs(Us(PerOp(machine, [&](int) { kernel.SysCpuSlices(); })))});
    table.AddRow({"null syscall", FmtUs(Us(PerOp(machine, [&](int) { kernel.SysNull(); })))});

    Result<aegis::PageGrant> grant = kernel.SysAllocPage();
    if (!grant.ok()) {
      std::abort();
    }
    table.AddRow({"TLB write (w/ cap check)",
                  FmtUs(Us(PerOp(machine, [&](int i) {
                    (void)kernel.SysTlbWrite(0x100000 + (i % 64) * hw::kPageBytes, grant->page,
                                             true, grant->cap);
                  })))});
    table.AddRow({"TLB invalidate", FmtUs(Us(PerOp(machine, [&](int i) {
                    (void)kernel.SysTlbInvalidate(0x100000 + (i % 64) * hw::kPageBytes);
                  })))});
    table.AddRow({"derive capability", FmtUs(Us(PerOp(machine, [&](int) {
                    (void)kernel.SysDeriveCap(grant->cap, cap::kRead);
                  })))});

    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < 512; ++i) {
      Result<aegis::PageGrant> page = kernel.SysAllocPage();
      if (page.ok()) {
        (void)kernel.SysDeallocPage(page->page, page->cap);
      }
    }
    table.AddRow({"alloc+dealloc page", FmtUs(Us((machine.clock().now() - t0) / 512))});
  });
  table.Print();
}

void BM_TlbWrite(benchmark::State& state) {
  uint64_t sim = 0;
  uint64_t n = 0;
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    Result<aegis::PageGrant> grant = kernel.SysAllocPage();
    const uint64_t t0 = machine.clock().now();
    int i = 0;
    for (auto _ : state) {
      (void)kernel.SysTlbWrite(0x100000 + (i++ % 64) * hw::kPageBytes, grant->page, true,
                               grant->cap);
      ++n;
    }
    sim = machine.clock().now() - t0;
  });
  state.counters["sim_us"] = n > 0 ? Us(sim) / static_cast<double>(n) : 0;
}
BENCHMARK(BM_TlbWrite);

void BM_GetCycles(benchmark::State& state) {
  uint64_t sim = 0;
  uint64_t n = 0;
  RunOnAegis([&](aegis::Aegis& kernel, hw::Machine& machine) {
    const uint64_t t0 = machine.clock().now();
    for (auto _ : state) {
      benchmark::DoNotOptimize(kernel.SysGetCycles());
      ++n;
    }
    sim = machine.clock().now() - t0;
  });
  state.counters["sim_us"] = n > 0 ? Us(sim) / static_cast<double>(n) : 0;
}
BENCHMARK(BM_GetCycles);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
