// Figure (reconstructed): the application-level stride scheduler (§7.3).
// Three compute-bound processes with a 3:2:1 ticket ratio are scheduled by
// an ExOS stride scheduler built on nothing but Aegis's slice vector and
// directed yield. We print the cumulative slice counts over time — the
// paper's figure shows the same three straight lines with slopes 3:2:1.
#include <memory>

#include "bench/bench_util.h"
#include "src/exos/stride.h"

namespace xok::bench {
namespace {

struct StrideResult {
  std::vector<size_t> history;
  std::vector<uint64_t> allocations;
};

StrideResult RunStride(uint32_t t0, uint32_t t1, uint32_t t2, uint32_t slices) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "f3"});
  aegis::Aegis kernel(machine);
  bool stop = false;
  std::array<std::unique_ptr<exos::Process>, 3> workers;
  for (int i = 0; i < 3; ++i) {
    workers[i] = std::make_unique<exos::Process>(
        kernel,
        [&stop](exos::Process& p) {
          while (!stop) {
            p.machine().Charge(p.kernel().slice_cycles() * 2);
          }
        },
        exos::Process::Options{.slices = 0, .demand_zero = true});
    if (!workers[i]->ok()) {
      std::abort();
    }
  }
  StrideResult result;
  exos::Process sched(kernel, [&](exos::Process& p) {
    exos::StrideScheduler stride(p);
    stride.AddClient(workers[0]->id(), t0);
    stride.AddClient(workers[1]->id(), t1);
    stride.AddClient(workers[2]->id(), t2);
    stride.RunSlices(slices);
    result.history = stride.history();
    result.allocations = stride.allocations();
    stop = true;
  });
  if (!sched.ok()) {
    std::abort();
  }
  kernel.Run();
  return result;
}

void PrintPaperTables() {
  const StrideResult result = RunStride(3, 2, 1, 150);
  Table table("Figure: stride scheduler, cumulative slices (3:2:1 tickets)",
              {"slice", "proc A (3)", "proc B (2)", "proc C (1)"});
  uint64_t counts[3] = {0, 0, 0};
  for (size_t t = 0; t < result.history.size(); ++t) {
    ++counts[result.history[t]];
    if ((t + 1) % 15 == 0) {
      table.AddRow({std::to_string(t + 1), std::to_string(counts[0]),
                    std::to_string(counts[1]), std::to_string(counts[2])});
    }
  }
  table.Print();
  std::printf("Final allocation: %lu/%lu/%lu of 150 (ideal 75/50/25).\n",
              static_cast<unsigned long>(result.allocations[0]),
              static_cast<unsigned long>(result.allocations[1]),
              static_cast<unsigned long>(result.allocations[2]));
  std::printf("Paper shape check: three straight lines with slopes 3:2:1 and\n"
              "per-prefix error bounded by about one slice.\n");
}

void BM_StrideScheduling(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunStride(3, 2, 1, 150).allocations[0]);
  }
}
BENCHMARK(BM_StrideScheduling)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
