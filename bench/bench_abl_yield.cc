// Ablation: directed yield (paper §5.1.1 — yield donates the rest of the
// slice *to a named environment*). ExOS IPC depends on it: a shared-memory
// word exchange with directed yields transfers control straight to the
// peer; with plain undirected yields the handoff must round-robin through
// the slice vector, and with neither (pure spinning) the exchange costs a
// whole time slice per hop. Measured with 6 bystander environments.
#include <memory>

#include "bench/bench_util.h"
#include "src/exos/ipc.h"

namespace xok::bench {
namespace {

enum class HandoffMode { kDirectedYield, kUndirectedYield, kSpin };

constexpr int kRounds = 200;
constexpr int kBystanders = 6;
constexpr hw::Vaddr kShmVa = 0x5000000;

uint64_t MeasureShmRoundtrip(HandoffMode mode) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "yld"});
  aegis::Aegis kernel(machine);
  exos::SharedBufferDesc desc;
  bool ready = false;
  bool stop = false;
  uint64_t per_roundtrip = 0;
  aegis::EnvId id_a = aegis::kNoEnv;
  aegis::EnvId id_b = aegis::kNoEnv;

  auto handoff = [&](exos::Process& p, aegis::EnvId peer) {
    switch (mode) {
      case HandoffMode::kDirectedYield:
        p.kernel().SysYield(peer);
        break;
      case HandoffMode::kUndirectedYield:
        p.kernel().SysYield();
        break;
      case HandoffMode::kSpin:
        p.machine().Charge(hw::Instr(10));  // Busy wait; the timer preempts.
        break;
    }
  };

  exos::Process a(kernel, [&](exos::Process& p) {
    desc = *exos::CreateSharedBuffer(p);
    (void)exos::MapSharedBuffer(p, desc, kShmVa);
    ready = true;
    const uint64_t t0 = machine.clock().now();
    for (int i = 0; i < kRounds; ++i) {
      (void)machine.StoreWord(kShmVa, 2 * i + 1);
      while (machine.LoadWord(kShmVa).value_or(0) != static_cast<uint32_t>(2 * i + 2)) {
        handoff(p, id_b);
      }
    }
    per_roundtrip = (machine.clock().now() - t0) / kRounds;
    stop = true;
  });
  exos::Process b(kernel, [&](exos::Process& p) {
    while (!ready) {
      p.kernel().SysYield();
    }
    (void)exos::MapSharedBuffer(p, desc, kShmVa);
    for (int i = 0; i < kRounds; ++i) {
      while (machine.LoadWord(kShmVa).value_or(0) != static_cast<uint32_t>(2 * i + 1)) {
        handoff(p, id_a);
      }
      (void)machine.StoreWord(kShmVa, 2 * i + 2);
    }
  });
  id_a = a.id();
  id_b = b.id();
  // Bystanders: the cost of undirected handoff scales with them.
  std::vector<std::unique_ptr<exos::Process>> bystanders;
  for (int i = 0; i < kBystanders; ++i) {
    bystanders.push_back(std::make_unique<exos::Process>(kernel, [&](exos::Process& p) {
      while (!stop) {
        p.kernel().SysYield();
      }
    }));
  }
  kernel.Run();
  return per_roundtrip;
}

void PrintPaperTables() {
  const uint64_t directed = MeasureShmRoundtrip(HandoffMode::kDirectedYield);
  const uint64_t undirected = MeasureShmRoundtrip(HandoffMode::kUndirectedYield);
  const uint64_t spin = MeasureShmRoundtrip(HandoffMode::kSpin);
  Table table("Ablation: directed yield (shm word exchange, 6 bystander envs)",
              {"handoff", "us/roundtrip", "vs directed"});
  table.AddRow({"directed yield", FmtUs(Us(directed)), "1.0x"});
  table.AddRow({"undirected yield", FmtUs(Us(undirected)),
                FmtX(static_cast<double>(undirected) / directed)});
  table.AddRow({"spin (timer only)", FmtUs(Us(spin)),
                FmtX(static_cast<double>(spin) / directed)});
  table.Print();
  std::printf("Directed yield hands the slice straight to the peer; without it the\n"
              "exchange tours the bystanders (or burns whole slices spinning) —\n"
              "why Aegis's yield names a target (paper §5.1.1).\n");
}

void BM_DirectedHandoff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureShmRoundtrip(HandoffMode::kDirectedYield));
  }
}
BENCHMARK(BM_DirectedHandoff)->Unit(benchmark::kMillisecond);

void BM_UndirectedHandoff(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureShmRoundtrip(HandoffMode::kUndirectedYield));
  }
}
BENCHMARK(BM_UndirectedHandoff)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
