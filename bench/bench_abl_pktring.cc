// Ablation: zero-copy packet rings vs the legacy copy-queue receive path.
//
// RX: the same host-injected 60-byte UDP bursts are demultiplexed through
// DPF three ways — legacy kernel copy-queue (per-frame kernel buffering,
// per-frame doorbell, SysRecvPacket copy-out), RX ring with a doorbell per
// deposit (batch_doorbells = false), and RX ring with armed/batched
// doorbells. Host-side injection charges nothing, so the numbers isolate
// the software receive path from 10 Mb/s wire serialisation.
//
// TX: N frames per doorbell through SysTxRing vs N individual SysNetSend
// syscalls. Both pay the same NIC copy/controller/serialisation costs; the
// ring amortises the kernel crossing.
#include "bench/bench_util.h"
#include "src/dpf/tcpip_filters.h"
#include "src/hw/nic.h"
#include "src/net/pktring.h"
#include "src/net/wire.h"

namespace xok::bench {
namespace {

constexpr uint16_t kPort = 200;
constexpr int kBursts = 64;
constexpr int kBurst = 16;  // Frames per injected burst (< NIC ring, < RX ring).
constexpr uint32_t kRxSlots = 32;
constexpr uint32_t kTxSlots = 32;
constexpr hw::PageId kRingFirstPage = 10;

enum class RxMode { kCopyQueue, kRingPerFrame, kRingBatched };

struct RxResult {
  uint64_t cycles_per_pkt = 0;
  double msgs_per_sec = 0.0;
  uint64_t doorbells = 0;
};

// Binds `rx_slots`x`tx_slots` rings over freshly allocated contiguous
// pages; returns the attached app-side view. Aborts on failure (bench).
net::PacketRingView BindRing(aegis::Aegis& kernel, hw::Machine& machine, dpf::FilterId id,
                             bool batch_doorbells) {
  const size_t bytes = net::PacketRingView::BytesNeeded(kRxSlots, kTxSlots);
  const uint32_t pages = static_cast<uint32_t>((bytes + hw::kPageBytes - 1) / hw::kPageBytes);
  cap::Capability cap0;
  for (uint32_t i = 0; i < pages; ++i) {
    Result<aegis::PageGrant> grant = kernel.SysAllocPage(kRingFirstPage + i);
    if (!grant.ok()) {
      std::abort();
    }
    if (i == 0) {
      cap0 = grant->cap;
    }
  }
  aegis::PacketRingSpec spec;
  spec.first_page = kRingFirstPage;
  spec.pages = pages;
  spec.rx_slots = kRxSlots;
  spec.tx_slots = kTxSlots;
  spec.batch_doorbells = batch_doorbells;
  if (kernel.SysBindPacketRing(id, spec, cap0) != Status::kOk) {
    std::abort();
  }
  return *net::PacketRingView::Attach(machine.mem().RangeSpan(kRingFirstPage, pages),
                                      kRxSlots, kTxSlots);
}

RxResult MeasureRx(RxMode mode) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "rxb"});
  aegis::Aegis kernel(machine);
  hw::Wire wire;
  hw::Nic nic(machine, 0xb);
  wire.Attach(&nic);
  kernel.AttachNic(&nic);

  RxResult result;
  aegis::EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel.SysBindFilter(std::move(fspec), cap::Capability{});
    if (!id.ok()) {
      std::abort();
    }
    std::optional<net::PacketRingView> view;
    if (mode != RxMode::kCopyQueue) {
      view = BindRing(kernel, machine, *id, mode == RxMode::kRingBatched);
    }
    const std::vector<uint8_t> payload = {7, 0, 0, 0};
    const std::vector<uint8_t> frame =
        net::BuildUdpFrame(0xb, 0xa, 1, 2, 100, kPort, payload);

    uint64_t consumed = 0;
    const uint64_t t0 = machine.clock().now();
    for (int burst = 0; burst < kBursts; ++burst) {
      for (int i = 0; i < kBurst; ++i) {
        nic.InjectRx(frame);
      }
      kernel.SysNull();  // Charge boundary: the rx interrupt drains the NIC.
      if (mode == RxMode::kCopyQueue) {
        for (int i = 0; i < kBurst; ++i) {
          Result<std::vector<uint8_t>> got = kernel.SysRecvPacket(*id);
          if (!got.ok()) {
            std::abort();
          }
          net::UdpView udp;
          if (net::ParseUdpFrame(*got, &udp)) {
            consumed += udp.payload[0];
          }
        }
      } else {
        while (!view->RxEmpty()) {
          net::UdpView udp;
          if (net::ParseUdpFrame(view->RxFront(), &udp)) {  // Parsed in place.
            consumed += udp.payload[0];
          }
          view->RxPop();
        }
      }
    }
    const uint64_t total = machine.clock().now() - t0;
    const uint64_t frames = static_cast<uint64_t>(kBursts) * kBurst;
    if (consumed != frames * 7) {
      std::abort();  // Every frame must actually be consumed.
    }
    result.cycles_per_pkt = total / frames;
    result.msgs_per_sec =
        static_cast<double>(frames) / (static_cast<double>(total) / hw::kClockHz);
    result.doorbells = kernel.packet_stats(*id).doorbells;
  };
  if (!kernel.CreateEnv(std::move(spec)).ok()) {
    std::abort();
  }
  kernel.Run();
  return result;
}

struct TxResult {
  uint64_t cycles_per_frame = 0;     // Elapsed, including TX-busy stalls.
  uint64_t sw_cycles_per_frame = 0;  // Software path only (stalls removed).
};

TxResult MeasureTx(bool ring) {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "txb"});
  aegis::Aegis kernel(machine);
  hw::Wire wire;
  hw::Nic nic(machine, 0xb);
  wire.Attach(&nic);  // Transmit needs a cable, even with no peer.
  kernel.AttachNic(&nic);

  TxResult result;
  aegis::EnvSpec spec;
  spec.entry = [&] {
    aegis::FilterBindSpec fspec;
    fspec.filter = dpf::UdpPortFilter(kPort);
    Result<dpf::FilterId> id = kernel.SysBindFilter(std::move(fspec), cap::Capability{});
    if (!id.ok()) {
      std::abort();
    }
    std::optional<net::PacketRingView> view;
    if (ring) {
      view = BindRing(kernel, machine, *id, /*batch_doorbells=*/true);
    }
    const std::vector<uint8_t> payload = {7, 0, 0, 0};
    const std::vector<uint8_t> frame =
        net::BuildUdpFrame(0xa, 0xb, 2, 1, kPort, 100, payload);

    constexpr int kBatches = 16;
    const uint64_t t0 = machine.clock().now();
    for (int batch = 0; batch < kBatches; ++batch) {
      if (ring) {
        for (int i = 0; i < kBurst; ++i) {
          view->TxPush(frame);
        }
        Result<uint32_t> sent = kernel.SysTxRing(*id);
        if (!sent.ok() || *sent != static_cast<uint32_t>(kBurst)) {
          std::abort();
        }
      } else {
        for (int i = 0; i < kBurst; ++i) {
          if (kernel.SysNetSend(frame) != Status::kOk) {
            std::abort();
          }
        }
      }
    }
    const uint64_t frames = static_cast<uint64_t>(kBatches) * kBurst;
    const uint64_t total = machine.clock().now() - t0;
    result.cycles_per_frame = total / frames;
    // Back-to-back 60-byte sends are wire-bound: the sender mostly stalls
    // on the 10 Mb/s transmitter. Subtracting the stall isolates the
    // software path, where the batched doorbell's savings live.
    result.sw_cycles_per_frame = (total - nic.tx_stall_cycles()) / frames;
  };
  if (!kernel.CreateEnv(std::move(spec)).ok()) {
    std::abort();
  }
  kernel.Run();
  return result;
}

std::string FmtRate(double per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0fk", per_sec / 1000.0);
  return buf;
}

void PrintPaperTables() {
  const RxResult queue = MeasureRx(RxMode::kCopyQueue);
  const RxResult per_frame = MeasureRx(RxMode::kRingPerFrame);
  const RxResult batched = MeasureRx(RxMode::kRingBatched);

  Table rx("Packet rings ablation: RX path, 60-byte frames (simulated)",
           {"mode", "cycles/pkt", "msgs/sec", "doorbells"});
  rx.AddRow({"copy-queue", std::to_string(queue.cycles_per_pkt), FmtRate(queue.msgs_per_sec),
             std::to_string(queue.doorbells)});
  rx.AddRow({"ring, db/frame", std::to_string(per_frame.cycles_per_pkt),
             FmtRate(per_frame.msgs_per_sec), std::to_string(per_frame.doorbells)});
  rx.AddRow({"ring, batched db", std::to_string(batched.cycles_per_pkt),
             FmtRate(batched.msgs_per_sec), std::to_string(batched.doorbells)});
  rx.Print();

  const TxResult tx_syscall = MeasureTx(/*ring=*/false);
  const TxResult tx_ring = MeasureTx(/*ring=*/true);
  Table tx("Packet rings ablation: TX path, 16 frames per doorbell (simulated)",
           {"mode", "cycles/frame", "sw cycles/frame"});
  tx.AddRow({"SysNetSend each", std::to_string(tx_syscall.cycles_per_frame),
             std::to_string(tx_syscall.sw_cycles_per_frame)});
  tx.AddRow({"SysTxRing batch", std::to_string(tx_ring.cycles_per_frame),
             std::to_string(tx_ring.sw_cycles_per_frame)});
  tx.Print();

  std::printf("Shape check: ring+batched < ring+db/frame < copy-queue on RX.\n"
              "Elapsed TX is wire-bound either way; the batched doorbell's\n"
              "saving shows in software cycles (stalls excluded).\n");
  if (batched.cycles_per_pkt >= queue.cycles_per_pkt) {
    std::printf("WARNING: batched ring did not beat the copy-queue path!\n");
  }
}

void BM_RxCopyQueue(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureRx(RxMode::kCopyQueue));
  }
  state.counters["sim_cycles_per_pkt"] =
      static_cast<double>(MeasureRx(RxMode::kCopyQueue).cycles_per_pkt);
}
BENCHMARK(BM_RxCopyQueue)->Unit(benchmark::kMillisecond);

void BM_RxRingBatched(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureRx(RxMode::kRingBatched));
  }
  state.counters["sim_cycles_per_pkt"] =
      static_cast<double>(MeasureRx(RxMode::kRingBatched).cycles_per_pkt);
}
BENCHMARK(BM_RxRingBatched)->Unit(benchmark::kMillisecond);

void BM_TxRingBatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureTx(/*ring=*/true));
  }
  state.counters["sim_cycles_per_frame"] =
      static_cast<double>(MeasureTx(/*ring=*/true).cycles_per_frame);
}
BENCHMARK(BM_TxRingBatch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xok::bench

XOK_BENCH_MAIN(xok::bench::PrintPaperTables)
