#!/bin/sh
# Runs one suite of benches and merges their google-benchmark JSON outputs
# into a single report:
#   net   — DPF demux, ASH/UDP roundtrip, packet rings  -> BENCH_net.json
#   fs    — file-cache policy and journaling ablations  -> BENCH_fs.json
#   trace — xtrace observability cost ablation          -> BENCH_trace.json
#   smp   — multi-CPU scaling and shootdown cost        -> BENCH_smp.json
#   pressure — throughput under revocation storms       -> BENCH_pressure.json
#   server — end-to-end HTTP/KV serving vs Ultrix       -> BENCH_server.json
#   overload — goodput vs offered load, shed on/off    -> BENCH_overload.json
#   reqtrace — per-request critical-path attribution   -> BENCH_reqtrace.json
#
# The trace suite additionally arms the kernel event ring in every bench
# boot (--xok_trace) and writes one TRACE_<bench>.json event summary next
# to the merged report.
#
# Usage: run_benches.sh [suite] [output.json]
#   BENCH_BIN_DIR: directory holding the bench binaries (default: cwd).
# Invoked by the optional `bench_net` / `bench_fs` / `bench_trace` CMake
# targets; also runnable by hand from the build tree's bench/ directory.
set -eu

suite="${1:-net}"
case "$suite" in
  net)
    benches="bench_t07_dpf bench_t11_ash_net bench_abl_pktring"
    default_out="BENCH_net.json"
    with_trace=0
    ;;
  fs)
    benches="bench_abl_file_cache bench_abl_journal"
    default_out="BENCH_fs.json"
    with_trace=0
    ;;
  trace)
    benches="bench_abl_trace"
    default_out="BENCH_trace.json"
    with_trace=1
    ;;
  smp)
    benches="bench_abl_smp"
    default_out="BENCH_smp.json"
    with_trace=0
    ;;
  pressure)
    benches="bench_abl_pressure"
    default_out="BENCH_pressure.json"
    with_trace=0
    ;;
  server)
    benches="bench_e2e_server"
    default_out="BENCH_server.json"
    with_trace=0
    ;;
  overload)
    benches="bench_abl_overload"
    default_out="BENCH_overload.json"
    with_trace=0
    ;;
  reqtrace)
    benches="bench_abl_reqtrace"
    default_out="BENCH_reqtrace.json"
    with_trace=0
    ;;
  *)
    echo "run_benches: unknown suite '$suite' (expected: net, fs, trace, smp, pressure, server, overload, reqtrace)" >&2
    exit 2
    ;;
esac

out="${2:-$default_out}"
out_dir="$(dirname "$out")"
bin_dir="${BENCH_BIN_DIR:-.}"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

for bench in $benches; do
  if [ ! -x "$bin_dir/$bench" ]; then
    echo "run_benches: missing $bin_dir/$bench (build the bench targets first)" >&2
    exit 1
  fi
  echo "== $bench =="
  # The paper-style table goes to the console; the machine-readable run
  # goes to JSON. min_time keeps the wall-clock portion short — the
  # simulated-cycle numbers inside are deterministic anyway.
  trace_flag=""
  if [ "$with_trace" = "1" ]; then
    trace_flag="--xok_trace=$out_dir/TRACE_$bench.json"
  fi
  "$bin_dir/$bench" \
    $trace_flag \
    --benchmark_out="$tmp_dir/$bench.json" \
    --benchmark_out_format=json \
    --benchmark_min_time=0.05
done

python3 - "$out" "$tmp_dir" $benches <<'EOF'
import json
import sys

out_path, tmp_dir, names = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {"context": None, "benchmarks": []}
for name in names:
    with open(f"{tmp_dir}/{name}.json") as f:
        report = json.load(f)
    if merged["context"] is None:
        merged["context"] = report.get("context", {})
    for entry in report.get("benchmarks", []):
        entry["source_binary"] = name
        merged["benchmarks"].append(entry)
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
print(f"wrote {out_path}: {len(merged['benchmarks'])} benchmarks from {len(names)} binaries")
EOF
