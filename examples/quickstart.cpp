// Quickstart: boot a simulated machine, install the Aegis exokernel, run
// two ExOS processes that talk through an application-level pipe, and poke
// at the secure-binding API. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/aegis.h"
#include "src/exos/ipc.h"
#include "src/exos/process.h"

using namespace xok;

int main() {
  // 1. The hardware: a DECstation-like simulated machine.
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "quickstart"});

  // 2. The exokernel: securely multiplexes the hardware, implements no
  //    abstractions.
  aegis::Aegis kernel(machine);

  // 3. Library operating system processes. Everything interesting —
  //    virtual memory, the pipe, blocking — is library code.
  exos::SharedBufferDesc ring;
  bool ring_ready = false;
  exos::PipePeer writer_peer;
  exos::PipePeer reader_peer;
  constexpr hw::Vaddr kRingVa = 0x5000000;

  exos::Process writer(kernel, [&](exos::Process& p) {
    // Allocate a physical page (the kernel hands back its *name* and a
    // capability) and share it with the reader.
    ring = *exos::CreateSharedBuffer(p);
    (void)exos::MapSharedBuffer(p, ring, kRingVa);
    ring_ready = true;

    exos::PipeEndpoint out(p, kRingVa, writer_peer, /*posix_emulation=*/false);
    const char* message = "hello from an application-level operating system";
    (void)out.WriteMessage(
        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(message), 49));
    std::printf("[writer %u] sent greeting; my heap is demand-paged by ExOS\n", p.id());

    // Touch demand-zero heap: the fault is handled by library code.
    (void)p.machine().StoreWord(0x100000, 42);
    std::printf("[writer %u] wrote my heap at 0x100000 = %u\n", p.id(),
                p.machine().LoadWord(0x100000).value_or(0));
  });

  exos::Process reader(kernel, [&](exos::Process& p) {
    while (!ring_ready) {
      p.kernel().SysYield();
    }
    (void)exos::MapSharedBuffer(p, ring, kRingVa);
    exos::PipeEndpoint in(p, kRingVa, reader_peer, /*posix_emulation=*/false);
    uint8_t buf[128] = {};
    Result<uint32_t> len = in.ReadMessage(buf);
    std::printf("[reader %u] got %u bytes: \"%s\"\n", p.id(), len.value_or(0),
                reinterpret_cast<const char*>(buf));
  });

  if (!writer.ok() || !reader.ok()) {
    std::fprintf(stderr, "failed to create processes\n");
    return 1;
  }
  writer_peer = {reader.id(), reader.env_cap()};
  reader_peer = {writer.id(), writer.env_cap()};

  // 4. Run until every environment exits.
  kernel.Run();

  std::printf("simulated time elapsed: %.2f ms; free pages: %u\n",
              machine.clock().now_micros() / 1000.0, kernel.free_pages());
  return 0;
}
