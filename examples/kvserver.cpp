// kvserver: the Cheetah-style HTTP/KV server libOS, end to end on one
// simulated machine. Everything a monolithic kernel would own is library
// policy here:
//
//   NIC -> DPF shard filters -> per-worker zero-copy packet rings
//       \-> ASH fast path (hot-key GETs answered at interrupt level)
//   worker: httpkv parse -> KvStore read cache -> journaled LibFS
//       -> response built in a TX-ring slot -> one doorbell per batch
//
// Two worker environments split the key space by a DPF payload atom
// (software RSS — the *filter* does the steering), run under a
// Supervisor, and are spread across both CPUs by the application-level
// stride scheduler. The loadgen environment replays a seeded zipf
// request stream against them and verifies every response end to end.
//
//   cmake -B build && cmake --build build
//   ./build/examples/kvserver
#include <cstdio>

#include "src/core/aegis.h"
#include "src/exos/server/loadgen.h"
#include "src/exos/server/server.h"
#include "src/hw/disk.h"
#include "src/hw/nic.h"

using namespace xok;
using namespace xok::exos::server;

namespace {
uint64_t LoopResolve(uint32_t) { return 0xa; }  // One machine: loop everything back.
}  // namespace

int main() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 2048, .name = "kv", .cpus = 2});
  aegis::Aegis kernel(machine, aegis::Aegis::Config{.max_envs = 200});
  hw::Nic nic(machine, 0xa);
  hw::Disk disk(machine, 1024);
  kernel.AttachNic(&nic);
  kernel.AttachDisk(&disk);

  KvServerConfig config;
  config.iface = exos::NetIface{0xa, /*ip=*/1, LoopResolve};
  config.workers = 2;
  config.use_rings = true;
  config.use_ash = true;
  config.hot_keys = {LoadKeyName(0)};
  config.ash_peer_ip = 2;
  config.ash_peer_port = 7999;
  config.preload = MakePreload(/*keys=*/12, /*value_bytes=*/64);
  config.stride_slices_per_cpu = 400;
  KvServer server(kernel, config);
  if (!server.ok()) {
    std::fprintf(stderr, "kvserver: server setup failed\n");
    return 1;
  }

  WorkloadConfig workload;
  workload.seed = 42;
  workload.requests = 200;
  workload.keys = 12;
  workload.put_per_mille = 150;
  // A durability sync stalls the worker for ~1M cycles; retransmitting
  // into the stall just makes duplicate work for it.
  workload.retry_timeout_cycles = 1'500'000;
  workload.trace = true;  // Harvest per-stage counts from the xtrace ring.
  LoadGenTarget target;
  target.iface = exos::NetIface{0xa, /*ip=*/2, LoopResolve};
  target.server_ip = 1;
  target.server_port = config.port;
  target.workers = config.workers;
  target.hot_key = LoadKeyName(0);

  LoadStats stats;
  exos::Process client(kernel,
                       [&](exos::Process& p) { stats = RunLoadGen(p, target, workload); });
  if (!client.ok()) {
    std::fprintf(stderr, "kvserver: client setup failed\n");
    return 1;
  }
  kernel.Run();

  std::printf("kvserver: %llu/%u data requests acked (%llu retries, %llu corrupt)\n",
              static_cast<unsigned long long>(stats.acked), workload.requests + 2,
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.corrupt));
  std::printf("  throughput  %.0f requests/s (simulated)\n", stats.Rps());
  std::printf("  latency     p50 %llu  p99 %llu  p999 %llu cycles\n",
              static_cast<unsigned long long>(stats.latency.p50),
              static_cast<unsigned long long>(stats.latency.p99),
              static_cast<unsigned long long>(stats.latency.p999));
  std::printf("  hot key     p50 %llu cycles over %llu GETs (ASH answered %llu)\n",
              static_cast<unsigned long long>(stats.hot_latency.p50),
              static_cast<unsigned long long>(stats.hot_latency.count),
              static_cast<unsigned long long>(server.TotalAshHits()));
  std::printf("  delivery    ash:%llu ring:%llu queue:%llu\n",
              static_cast<unsigned long long>(stats.stages.path_ash),
              static_cast<unsigned long long>(stats.stages.path_ring),
              static_cast<unsigned long long>(stats.stages.path_queue));
  for (uint32_t i = 0; i < config.workers; ++i) {
    const WorkerStats& ws = server.worker_stats(i);
    std::printf("  worker %u    %llu requests (%llu get / %llu put), "
                "%llu batches, %llu syncs, cache %llu/%llu hits\n",
                i, static_cast<unsigned long long>(ws.requests),
                static_cast<unsigned long long>(ws.gets),
                static_cast<unsigned long long>(ws.puts),
                static_cast<unsigned long long>(ws.batches),
                static_cast<unsigned long long>(ws.syncs),
                static_cast<unsigned long long>(ws.store.hits),
                static_cast<unsigned long long>(ws.store.gets));
  }
  const bool healthy = stats.acked == workload.requests + config.workers &&
                       stats.corrupt == 0 && stats.gave_up == 0 &&
                       server.AllWorkersDone() && kernel.audit_failures() == 0;
  std::printf("kvserver: %s\n", healthy ? "clean run" : "UNHEALTHY RUN");
  return healthy ? 0 : 1;
}
