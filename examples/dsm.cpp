// Page-based distributed shared memory across two simulated machines —
// the flagship application the paper's fast exceptions and application-
// level VM enable ("page-based distributed shared memory systems" are
// cited throughout §2 and §6).
//
// One 4 KB page is shared between two nodes under a migratory single-owner
// protocol, built *entirely* in application space:
//   * the page is mapped PROT_NONE while remote; any access traps into the
//     ExOS user-level fault handler (fast Aegis dispatch),
//   * the handler requests the page over UDP; the owner snapshots the
//     page, protects its copy, and ships the contents back in four
//     fragments (Ethernet MTU),
//   * the requester installs the bytes, unprotects, and retries the
//     faulting access.
// The two nodes take turns incrementing a counter that lives in the shared
// page, so the page migrates back and forth; we count the transfers.
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/exos/udp.h"
#include "src/hw/world.h"

using namespace xok;

namespace {

constexpr hw::Vaddr kDsmVa = 0x4000000;
constexpr uint16_t kDsmPortA = 700;
constexpr uint16_t kDsmPortB = 701;
constexpr int kIncrementsPerNode = 8;

constexpr uint8_t kMsgReq = 1;
constexpr uint8_t kMsgData = 2;
constexpr uint32_t kFragBytes = 1024;
constexpr uint32_t kFragments = hw::kPageBytes / kFragBytes;

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }

// One DSM node: runs inside a single ExOS process.
class DsmNode {
 public:
  DsmNode(exos::Process& proc, exos::UdpSocket& socket, uint32_t peer_ip, uint16_t peer_port,
          bool initially_owner)
      : proc_(proc), socket_(socket), peer_ip_(peer_ip), peer_port_(peer_port),
        owner_(initially_owner) {}

  void Setup() {
    (void)proc_.vm().Map(kDsmVa, owner_ ? exos::kProtWrite : exos::kProtNone);
    proc_.vm().set_trap_handler(
        [this](hw::Vaddr va, bool is_write) { return FetchPage(va, is_write); });
  }

  // Serves one pending request, if any (non-blocking).
  void Poll() {
    Result<exos::Datagram> msg = socket_.Recv(/*blocking=*/false);
    if (msg.ok() && !msg->payload.empty() && msg->payload[0] == kMsgReq) {
      ServeRequest();
    }
  }

  // Blocks until a request arrives, then serves it (used at shutdown so
  // the peer can finish).
  void ServeOne() {
    for (;;) {
      Result<exos::Datagram> msg = socket_.Recv(/*blocking=*/true);
      if (msg.ok() && !msg->payload.empty() && msg->payload[0] == kMsgReq) {
        ServeRequest();
        return;
      }
    }
  }

  bool owner() const { return owner_; }
  int transfers() const { return transfers_; }

 private:
  // The user-level fault handler: bring the page here.
  bool FetchPage(hw::Vaddr va, bool) {
    if (owner_ || hw::VpnOf(va) != hw::VpnOf(kDsmVa)) {
      return false;  // Not a DSM fault.
    }
    std::vector<uint8_t> req = {kMsgReq};
    (void)socket_.SendTo(peer_ip_, peer_port_, req);

    // Collect the four DATA fragments (serving nothing meanwhile: the
    // protocol's strict turn-taking means the peer never requests now).
    std::vector<uint8_t> page(hw::kPageBytes);
    uint32_t got = 0;
    while (got < kFragments) {
      Result<exos::Datagram> msg = socket_.Recv(/*blocking=*/true);
      if (!msg.ok() || msg->payload.size() != 2 + kFragBytes ||
          msg->payload[0] != kMsgData) {
        continue;
      }
      const uint8_t seq = msg->payload[1];
      std::memcpy(&page[seq * kFragBytes], &msg->payload[2], kFragBytes);
      ++got;
    }
    // Install the contents and take ownership.
    (void)proc_.vm().Protect(kDsmVa, 1, exos::kProtWrite);
    for (uint32_t off = 0; off < hw::kPageBytes; off += 4) {
      uint32_t word = 0;
      std::memcpy(&word, &page[off], 4);
      (void)proc_.machine().StoreWord(kDsmVa + off, word);
    }
    owner_ = true;
    ++transfers_;
    return true;
  }

  void ServeRequest() {
    if (!owner_) {
      return;  // Stale request; the turn discipline prevents this.
    }
    // Snapshot the page (while still readable), then protect and ship it.
    std::vector<uint8_t> page(hw::kPageBytes);
    for (uint32_t off = 0; off < hw::kPageBytes; off += 4) {
      const uint32_t word = proc_.machine().LoadWord(kDsmVa + off).value_or(0);
      std::memcpy(&page[off], &word, 4);
    }
    owner_ = false;
    (void)proc_.vm().Protect(kDsmVa, 1, exos::kProtNone);
    for (uint32_t seq = 0; seq < kFragments; ++seq) {
      std::vector<uint8_t> frag(2 + kFragBytes);
      frag[0] = kMsgData;
      frag[1] = static_cast<uint8_t>(seq);
      std::memcpy(&frag[2], &page[seq * kFragBytes], kFragBytes);
      (void)socket_.SendTo(peer_ip_, peer_port_, frag);
    }
    ++transfers_;
  }

  exos::Process& proc_;
  exos::UdpSocket& socket_;
  uint32_t peer_ip_;
  uint16_t peer_port_;
  bool owner_;
  int transfers_ = 0;
};

// The worker: increment the shared counter on our parity, serve page
// requests otherwise.
void RunNode(exos::Process& p, const exos::NetIface& iface, uint16_t my_port,
             uint32_t peer_ip, uint16_t peer_port, bool first, const char* name) {
  exos::UdpSocket socket(p, iface);
  if (socket.Bind(my_port) != Status::kOk) {
    std::printf("[%s] bind failed\n", name);
    return;
  }
  DsmNode node(p, socket, peer_ip, peer_port, /*initially_owner=*/first);
  node.Setup();
  if (!first) {
    p.kernel().SysSleep(hw::kClockHz / 100);  // Let the owner boot first.
  }

  int my_writes = 0;
  const uint32_t my_parity = first ? 0 : 1;
  while (my_writes < kIncrementsPerNode) {
    node.Poll();
    // Reading the counter faults the page over if it is remote.
    const uint32_t counter = p.machine().LoadWord(kDsmVa).value_or(0);
    if (counter % 2 == my_parity) {
      (void)p.machine().StoreWord(kDsmVa, counter + 1);
      ++my_writes;
      std::printf("[%s] counter %u -> %u (page transfers so far: %d)\n", name, counter,
                  counter + 1, node.transfers());
    } else {
      p.kernel().SysSleep(hw::kClockHz / 1000);  // Peer's turn.
    }
  }
  // Node A finishes first (it writes on even counters) while holding the
  // page; B still needs it for its final increment. Serve that last
  // request before exiting. B finishes the whole run, so it serves nobody.
  if (first && node.owner()) {
    node.ServeOne();
  }
  std::printf("[%s] done: %d increments, %d page transfers\n", name, my_writes,
              node.transfers());
}

}  // namespace

int main() {
  hw::World world;
  hw::Machine ma(hw::Machine::Config{.phys_pages = 256, .name = "nodeA"}, &world);
  hw::Machine mb(hw::Machine::Config{.phys_pages = 256, .name = "nodeB"}, &world);
  aegis::Aegis ka(ma);
  aegis::Aegis kb(mb);
  hw::Wire wire;
  hw::Nic na(ma, 0xa);
  hw::Nic nb(mb, 0xb);
  wire.Attach(&na);
  wire.Attach(&nb);
  ka.AttachNic(&na);
  kb.AttachNic(&nb);

  exos::Process node_a(ka, [&](exos::Process& p) {
    RunNode(p, exos::NetIface{0xa, 1, Resolve}, kDsmPortA, 2, kDsmPortB, /*first=*/true, "A");
  });
  exos::Process node_b(kb, [&](exos::Process& p) {
    RunNode(p, exos::NetIface{0xb, 2, Resolve}, kDsmPortB, 1, kDsmPortA, /*first=*/false,
            "B");
  });
  if (!node_a.ok() || !node_b.ok()) {
    return 1;
  }
  world.Run({[&] { ka.Run(); }, [&] { kb.Run(); }});
  std::printf("distributed counter finished at %u after %.2f simulated ms\n",
              2 * kIncrementsPerNode, world.clock()->now_micros() / 1000.0);
  return 0;
}
