// xtop: a live per-environment resource monitor, built entirely in
// application space from what the exokernel exposes — SysEnvStats (raw
// per-env counters), SysSyscallHist (log2 latency histograms), and a bound
// trace ring (src/exos/tracelib). The kernel contributes no "top"
// abstraction whatsoever: sampling period, which columns to show, and how
// to aggregate are all library policy here.
//
//   cmake -B build && cmake --build build
//   ./build/examples/xtop
#include <cstdio>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/exos/tracelib.h"
#include "src/exos/udp.h"
#include "src/hw/nic.h"

using namespace xok;

namespace {

// One sampled row per environment, straight from SysEnvStats.
void PrintSample(exos::Process& p, uint64_t sample_no) {
  std::printf("--- xtop sample %llu (cycle %llu) ---\n",
              static_cast<unsigned long long>(sample_no),
              static_cast<unsigned long long>(p.kernel().SysGetCycles()));
  std::printf("%4s %6s %4s %10s %9s %9s %8s %8s %8s %5s\n", "env", "alive", "cpu",
              "cycles", "syscalls", "tlb-miss", "pages", "pkt-rxtx", "blk-rw", "migr");
  for (aegis::EnvId id = 1;; ++id) {
    Result<aegis::EnvStats> stats = p.kernel().SysEnvStats(id);
    if (!stats.ok()) {
      break;
    }
    char cpu[8];
    if (stats->alive) {
      std::snprintf(cpu, sizeof(cpu), "%u", stats->cpu);
    } else {
      std::snprintf(cpu, sizeof(cpu), "-");
    }
    std::printf("%4u %6s %4s %10llu %9llu %9llu %8u %8llu %8llu %5llu\n", stats->env,
                stats->alive ? "yes" : (stats->killed ? "kill" : "exit"), cpu,
                static_cast<unsigned long long>(stats->counters.cycles_on_cpu),
                static_cast<unsigned long long>(stats->counters.syscalls_total()),
                static_cast<unsigned long long>(stats->counters.tlb_misses),
                stats->pages_held,
                static_cast<unsigned long long>(stats->counters.packets_rx +
                                                stats->counters.packets_tx),
                static_cast<unsigned long long>(stats->counters.disk_blocks_read +
                                                stats->counters.disk_blocks_written),
                static_cast<unsigned long long>(stats->counters.migrations));
  }
}

}  // namespace

int main() {
  // Two CPUs so the cpu/migr columns have something to show: the kernel
  // places the processes across both and they migrate as slices free up.
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "xtop", .cpus = 2});
  aegis::Aegis kernel(machine);
  hw::Wire wire;  // Nobody on the far end; TX still counts.
  hw::Nic nic(machine, 0x02aabbccddee);
  wire.Attach(&nic);
  kernel.AttachNic(&nic);

  // --- Workload: two processes generating observable activity ---

  // A memory-churner: allocates pages and touches demand-zero heap (TLB
  // misses, alloc syscalls).
  exos::Process churner(kernel, [](exos::Process& p) {
    for (int round = 0; round < 40; ++round) {
      (void)p.machine().StoreWord(0x200000 + round * hw::kPageBytes, round);
      p.kernel().SysYield();
    }
  });

  // A talker: sends UDP frames into the ether (packet TX counters).
  exos::Process talker(kernel, [](exos::Process& p) {
    exos::NetIface iface{/*mac=*/0x02aabbccddee, /*ip=*/1,
                         /*resolve=*/[](uint32_t) -> uint64_t { return 0x02ffeeddccbb; }};
    exos::UdpSocket socket(p, iface);
    if (socket.Bind(7000) != Status::kOk) {
      return;
    }
    const uint8_t payload[] = {'x', 't', 'o', 'p'};
    for (int i = 0; i < 25; ++i) {
      (void)socket.SendTo(/*dst_ip=*/2, /*dst_port=*/7001, payload);
      p.kernel().SysYield();
    }
    (void)socket.Close();
  });

  // --- The monitor itself: samples stats between sleeps, tails the ring ---
  exos::Process monitor(kernel, [](exos::Process& p) {
    exos::TraceSession trace(p);
    if (trace.Bind({.pages = 4, .mask = xtrace::kMaskAll}) != Status::kOk) {
      std::fprintf(stderr, "xtop: trace ring bind failed\n");
      return;
    }
    std::vector<xtrace::Record> records;
    for (uint64_t sample = 1; sample <= 3; ++sample) {
      p.kernel().SysSleep(50'000);  // 2 ms between samples at 25 MHz.
      PrintSample(p, sample);
      trace.Drain(records);
    }
    exos::TraceSummary summary = exos::Summarize(records);
    summary.dropped = trace.dropped();
    std::printf("\ntrace: %llu records (%llu dropped by ring, %llu lost to lap)\n",
                static_cast<unsigned long long>(summary.records),
                static_cast<unsigned long long>(summary.dropped),
                static_cast<unsigned long long>(trace.lapped()));
    for (uint32_t i = 0; i < xtrace::kEventCount; ++i) {
      if (summary.by_type[i] > 0) {
        std::printf("  %-14s %8llu\n", xtrace::EventName(static_cast<xtrace::Event>(i)),
                    static_cast<unsigned long long>(summary.by_type[i]));
      }
    }
    // Latency histogram for SysYield — the kernel keeps the log2 buckets,
    // the library decides how to render them.
    Result<xtrace::LatencyHist> hist =
        p.kernel().SysSyscallHist(static_cast<uint32_t>(xtrace::Sys::kYield));
    if (hist.ok() && hist->count > 0) {
      std::printf("\nsys_yield latency: %llu calls, mean %.1f cycles, max %llu\n",
                  static_cast<unsigned long long>(hist->count),
                  static_cast<double>(hist->total_cycles) / hist->count,
                  static_cast<unsigned long long>(hist->max_cycles));
      for (uint32_t b = 0; b < xtrace::kHistBuckets; ++b) {
        if (hist->bucket[b] > 0) {
          std::printf("  [2^%-2u, 2^%-2u) %8llu\n", b, b + 1,
                      static_cast<unsigned long long>(hist->bucket[b]));
        }
      }
    }
    (void)trace.Close();
  });

  if (!churner.ok() || !talker.ok() || !monitor.ok()) {
    std::fprintf(stderr, "xtop: failed to create processes\n");
    return 1;
  }
  kernel.Run();
  return 0;
}
