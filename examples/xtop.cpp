// xtop: a live per-environment resource monitor, built entirely in
// application space from what the exokernel exposes — SysEnvStats (raw
// per-env counters), SysSyscallHist (log2 latency histograms), and a bound
// trace ring (src/exos/tracelib). The kernel contributes no "top"
// abstraction whatsoever: sampling period, which columns to show, and how
// to aggregate are all library policy here. The "rps" column is the same
// idea one level up: the server libOS marks request enter/exit with
// SysTraceMark (kAppMark records), and the monitor turns the exits it
// drains each interval into a per-environment request rate — live RPS for
// a server the kernel doesn't even know is a server.
//
//   cmake -B build && cmake --build build
//   ./build/examples/xtop
#include <cstdio>
#include <unordered_map>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/exos/reqtrace.h"
#include "src/exos/server/loadgen.h"
#include "src/exos/server/server.h"
#include "src/exos/tracelib.h"
#include "src/exos/udp.h"
#include "src/hw/cost.h"
#include "src/hw/disk.h"
#include "src/hw/nic.h"

using namespace xok;

namespace {

constexpr uint64_t kNicMac = 0x02aabbccddee;

// Completed requests per env this interval, from drained kAppMark exits.
using RpsMap = std::unordered_map<uint16_t, uint64_t>;

// Per-env mean stage latencies this interval, from reqtrace timelines:
// the same joined critical path the bench aggregates, rendered live.
struct StageAgg {
  uint64_t n = 0;
  uint64_t rwait = 0;  // demux -> worker pickup (ring residency).
  uint64_t parse = 0;
  uint64_t store = 0;
  uint64_t tx = 0;
};
using StageMap = std::unordered_map<uint16_t, StageAgg>;

// One sampled row per environment, straight from SysEnvStats; the rps
// column comes from the trace ring, not the kernel.
void PrintSample(exos::Process& p, uint64_t sample_no, const RpsMap& reqs,
                 const StageMap& stages, uint64_t interval_cycles) {
  std::printf("--- xtop sample %llu (cycle %llu) ---\n",
              static_cast<unsigned long long>(sample_no),
              static_cast<unsigned long long>(p.kernel().SysGetCycles()));
  std::printf("%4s %6s %4s %10s %9s %9s %8s %8s %8s %6s %5s %7s %7s %7s %7s %7s\n",
              "env", "alive", "cpu", "cycles", "syscalls", "tlb-miss", "pages",
              "pkt-rxtx", "blk-rw", "shed", "migr", "rps", "rwait", "parse",
              "store", "tx");
  for (aegis::EnvId id = 1;; ++id) {
    Result<aegis::EnvStats> stats = p.kernel().SysEnvStats(id);
    if (!stats.ok()) {
      break;
    }
    char cpu[8];
    if (stats->alive) {
      std::snprintf(cpu, sizeof(cpu), "%u", stats->cpu);
    } else {
      std::snprintf(cpu, sizeof(cpu), "-");
    }
    char rps[16];
    const auto it = reqs.find(static_cast<uint16_t>(stats->env));
    if (it == reqs.end() || interval_cycles == 0) {
      std::snprintf(rps, sizeof(rps), "-");
    } else {
      std::snprintf(rps, sizeof(rps), "%.0f",
                    static_cast<double>(it->second) *
                        static_cast<double>(hw::kClockHz) /
                        static_cast<double>(interval_cycles));
    }
    // Mean per-stage cycles for requests this env completed this interval
    // ("-" when it completed none): where inside the worker the time went.
    char stage_cols[4][16];
    const auto st = stages.find(static_cast<uint16_t>(stats->env));
    const uint64_t vals[4] = {
        st != stages.end() ? st->second.rwait : 0,
        st != stages.end() ? st->second.parse : 0,
        st != stages.end() ? st->second.store : 0,
        st != stages.end() ? st->second.tx : 0,
    };
    for (int i = 0; i < 4; ++i) {
      if (st == stages.end() || st->second.n == 0) {
        std::snprintf(stage_cols[i], sizeof(stage_cols[i]), "-");
      } else {
        std::snprintf(stage_cols[i], sizeof(stage_cols[i]), "%llu",
                      static_cast<unsigned long long>(vals[i] / st->second.n));
      }
    }
    std::printf("%4u %6s %4s %10llu %9llu %9llu %8u %8llu %8llu %6llu %5llu %7s"
                " %7s %7s %7s %7s\n",
                stats->env, stats->alive ? "yes" : (stats->killed ? "kill" : "exit"),
                cpu, static_cast<unsigned long long>(stats->counters.cycles_on_cpu),
                static_cast<unsigned long long>(stats->counters.syscalls_total()),
                static_cast<unsigned long long>(stats->counters.tlb_misses),
                stats->pages_held,
                static_cast<unsigned long long>(stats->counters.packets_rx +
                                                stats->counters.packets_tx),
                static_cast<unsigned long long>(stats->counters.disk_blocks_read +
                                                stats->counters.disk_blocks_written),
                static_cast<unsigned long long>(stats->counters.packets_shed),
                static_cast<unsigned long long>(stats->counters.migrations), rps,
                stage_cols[0], stage_cols[1], stage_cols[2], stage_cols[3]);
  }
}

}  // namespace

int main() {
  // Two CPUs so the cpu/migr columns have something to show: the kernel
  // places the processes across both and they migrate as slices free up.
  hw::Machine machine(hw::Machine::Config{.phys_pages = 2048, .name = "xtop", .cpus = 2});
  aegis::Aegis kernel(machine, aegis::Aegis::Config{.max_envs = 64});
  hw::Wire wire;  // Nobody on the far end; TX still counts.
  hw::Nic nic(machine, kNicMac);
  hw::Disk disk(machine, 512);
  wire.Attach(&nic);
  kernel.AttachNic(&nic);
  kernel.AttachDisk(&disk);

  // --- Workload: two processes generating observable activity ---

  // A memory-churner: allocates pages and touches demand-zero heap (TLB
  // misses, alloc syscalls).
  exos::Process churner(kernel, [](exos::Process& p) {
    for (int round = 0; round < 40; ++round) {
      (void)p.machine().StoreWord(0x200000 + round * hw::kPageBytes, round);
      p.kernel().SysYield();
    }
  });

  // An HTTP/KV server worker plus a seeded load client (src/exos/server):
  // the worker marks every request enter/exit with SysTraceMark, which is
  // what the monitor's rps column reads back out of the trace ring.
  using namespace exos::server;
  auto loop_resolve = [](uint32_t) -> uint64_t { return kNicMac; };
  KvServerConfig server_config;
  server_config.iface = exos::NetIface{kNicMac, /*ip=*/3, loop_resolve};
  server_config.workers = 1;
  server_config.use_rings = true;
  // Write-back store: the journaled format + preload takes tens of
  // millions of cycles, and this demo wants the worker *serving* inside
  // the monitor's sampling window, not booting.
  server_config.journal_blocks = 0;
  // A low shed watermark so the overload column has something to show:
  // burst arrivals past 2 pending frames are dropped at the demux (the
  // client's retransmits recover them), and the monitor reads the count
  // back per env through SysEnvStats.
  server_config.ring.shed_watermark = 2;
  server_config.preload = MakePreload(/*keys=*/6, /*value_bytes=*/48);
  KvServer server(kernel, server_config);

  WorkloadConfig workload;
  workload.seed = 9;
  workload.requests = 400;
  workload.keys = 6;
  workload.value_bytes = 48;
  workload.put_per_mille = 0;  // GET-only: a steady rate for the rps column.
  // Pace the stream with idle gaps so serving spans several samples —
  // a live monitor is dull when the whole run fits in one interval.
  workload.burst = 8;
  workload.burst_gap_cycles = 150'000;
  LoadGenTarget target;
  target.iface = exos::NetIface{kNicMac, /*ip=*/4, loop_resolve};
  target.server_ip = 3;
  target.server_port = server_config.port;
  target.workers = server_config.workers;
  LoadStats load_stats;
  exos::Process load_client(kernel, [&](exos::Process& p) {
    load_stats = RunLoadGen(p, target, workload);
  });

  // A talker: sends UDP frames into the ether (packet TX counters).
  exos::Process talker(kernel, [](exos::Process& p) {
    exos::NetIface iface{/*mac=*/kNicMac, /*ip=*/1,
                         /*resolve=*/[](uint32_t) -> uint64_t { return 0x02ffeeddccbb; }};
    exos::UdpSocket socket(p, iface);
    if (socket.Bind(7000) != Status::kOk) {
      return;
    }
    const uint8_t payload[] = {'x', 't', 'o', 'p'};
    for (int i = 0; i < 25; ++i) {
      (void)socket.SendTo(/*dst_ip=*/2, /*dst_port=*/7001, payload);
      p.kernel().SysYield();
    }
    (void)socket.Close();
  });

  // --- The monitor itself: samples stats between sleeps, tails the ring ---
  exos::Process monitor(kernel, [](exos::Process& p) {
    exos::TraceSession trace(p);
    // kAppMark carries the server's request marks; the rest of the mask
    // keeps the closing summary interesting without flooding the ring.
    const uint32_t mask = xtrace::Bit(xtrace::Event::kAppMark) |
                          xtrace::Bit(xtrace::Event::kDpfMatch) |
                          xtrace::Bit(xtrace::Event::kEnvBirth) |
                          xtrace::Bit(xtrace::Event::kEnvDeath);
    if (trace.Bind({.pages = 4, .mask = mask}) != Status::kOk) {
      std::fprintf(stderr, "xtop: trace ring bind failed\n");
      return;
    }
    std::vector<xtrace::Record> records;
    size_t seen = 0;  // Records already attributed to an earlier sample.
    // Stage columns: the same records, joined into per-request timelines.
    exos::reqtrace::Collector collector(
        exos::reqtrace::Collector::Options{.keep_last = 8, .keep_all = true});
    size_t timelines_seen = 0;  // Timelines shown in an earlier sample.
    uint64_t last_cycle = p.kernel().SysGetCycles();
    for (uint64_t sample = 1; sample <= 5; ++sample) {
      // Long enough for the server worker to boot (journal format +
      // preload) and then show steady-state serving in later samples.
      p.kernel().SysSleep(2'500'000);
      trace.Drain(records);
      RpsMap reqs;
      for (size_t i = seen; i < records.size(); ++i) {
        const xtrace::Record& r = records[i];
        // SysTraceMark(req_id, 1, ...) is the server's request-exit mark.
        if (r.type == static_cast<uint16_t>(xtrace::Event::kAppMark) &&
            r.arg1 == exos::reqtrace::kPhaseExit) {
          ++reqs[r.env];
        }
        collector.Add(r);
      }
      seen = records.size();
      StageMap stages;
      for (size_t i = timelines_seen; i < collector.all().size(); ++i) {
        using exos::reqtrace::Span;
        const exos::reqtrace::RequestTimeline& t = collector.all()[i];
        StageAgg& agg = stages[t.env];
        ++agg.n;
        agg.rwait += t.span[static_cast<uint32_t>(Span::kRingWait)];
        agg.parse += t.span[static_cast<uint32_t>(Span::kParse)];
        agg.store += t.span[static_cast<uint32_t>(Span::kStore)];
        agg.tx += t.span[static_cast<uint32_t>(Span::kTx)];
      }
      timelines_seen = collector.all().size();
      const uint64_t now = p.kernel().SysGetCycles();
      PrintSample(p, sample, reqs, stages, now - last_cycle);
      last_cycle = now;
    }
    exos::TraceSummary summary = exos::Summarize(records);
    summary.dropped = trace.dropped();
    std::printf("\ntrace: %llu records (%llu dropped by ring, %llu lost to lap)\n",
                static_cast<unsigned long long>(summary.records),
                static_cast<unsigned long long>(summary.dropped),
                static_cast<unsigned long long>(trace.lapped()));
    for (uint32_t i = 0; i < xtrace::kEventCount; ++i) {
      if (summary.by_type[i] > 0) {
        std::printf("  %-14s %8llu\n", xtrace::EventName(static_cast<xtrace::Event>(i)),
                    static_cast<unsigned long long>(summary.by_type[i]));
      }
    }
    // Latency histogram for SysYield — the kernel keeps the log2 buckets,
    // the library decides how to render them.
    Result<xtrace::LatencyHist> hist =
        p.kernel().SysSyscallHist(static_cast<uint32_t>(xtrace::Sys::kYield));
    if (hist.ok() && hist->count > 0) {
      std::printf("\nsys_yield latency: %llu calls, mean %.1f cycles, max %llu\n",
                  static_cast<unsigned long long>(hist->count),
                  static_cast<double>(hist->total_cycles) / hist->count,
                  static_cast<unsigned long long>(hist->max_cycles));
      for (uint32_t b = 0; b < xtrace::kHistBuckets; ++b) {
        if (hist->bucket[b] > 0) {
          std::printf("  [2^%-2u, 2^%-2u) %8llu\n", b, b + 1,
                      static_cast<unsigned long long>(hist->bucket[b]));
        }
      }
    }
    (void)trace.Close();
  });

  if (!server.ok() || !load_client.ok() || !churner.ok() || !talker.ok() ||
      !monitor.ok()) {
    std::fprintf(stderr, "xtop: failed to create processes\n");
    return 1;
  }
  kernel.Run();
  std::printf("\nserver: %llu/%u requests acked at %.0f rps overall\n",
              static_cast<unsigned long long>(load_stats.acked),
              workload.requests + server_config.workers, load_stats.Rps());
  return 0;
}
