// Generational garbage collection with ExOS's software dirty bits — the
// class of application the paper's VM benchmarks motivate (Appel & Li:
// "efficient page-protection traps can be used by ... garbage collectors").
//
// A generational collector must find old-generation objects that were
// mutated since the last collection (they may now point into the young
// generation). Under a traditional OS this needs either compiler write
// barriers or expensive mprotect+SIGSEGV rounds. Under ExOS the page table
// is application data: Clean() re-arms a page's first-store trap, Dirty()
// is two loads in our own structure — so the collector scans only pages
// that were actually written.
#include <cstdio>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"

using namespace xok;

namespace {

constexpr int kHeapPages = 64;
constexpr hw::Vaddr kHeapBase = 0x1000000;
constexpr int kRounds = 5;

hw::Vaddr PageVa(int i) { return kHeapBase + static_cast<hw::Vaddr>(i) * hw::kPageBytes; }

}  // namespace

int main() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "gc"});
  aegis::Aegis kernel(machine);

  exos::Process mutator(kernel, [&](exos::Process& p) {
    exos::Vm& vm = p.vm();
    // Build the "old generation": 64 pages of objects.
    for (int i = 0; i < kHeapPages; ++i) {
      (void)machine.StoreWord(PageVa(i), i);
    }
    std::printf("heap built: %d pages\n", kHeapPages);

    uint64_t total_scanned = 0;
    for (int round = 0; round < kRounds; ++round) {
      // Start of a GC epoch: clean every page (re-arms the store traps).
      for (int i = 0; i < kHeapPages; ++i) {
        (void)vm.Clean(PageVa(i));
      }
      // The mutator runs: it writes a few pages (different ones each
      // round) and reads many (reads must NOT mark pages for scanning).
      const int writes = 3 + round;
      for (int w = 0; w < writes; ++w) {
        const int page = (round * 7 + w * 11) % kHeapPages;
        (void)machine.StoreWord(PageVa(page) + 64, round);
      }
      for (int r = 0; r < kHeapPages; ++r) {
        (void)machine.LoadWord(PageVa(r));
      }
      // Minor collection: scan only dirty pages.
      int scanned = 0;
      for (int i = 0; i < kHeapPages; ++i) {
        if (vm.Dirty(PageVa(i)).value_or(false)) {
          ++scanned;
          // (A real collector would trace the objects on this page.)
          for (uint32_t off = 0; off < hw::kPageBytes; off += 256) {
            (void)machine.LoadWord(PageVa(i) + off);
          }
        }
      }
      total_scanned += scanned;
      std::printf("round %d: %d pages written, %d pages scanned (of %d)\n", round, writes,
                  scanned, kHeapPages);
    }
    std::printf("scanned %llu page-visits total; full-heap scanning would have "
                "been %d\n",
                static_cast<unsigned long long>(total_scanned), kRounds * kHeapPages);
  });

  if (!mutator.ok()) {
    return 1;
  }
  kernel.Run();
  std::printf("simulated time: %.2f ms\n", machine.clock().now_micros() / 1000.0);
  return 0;
}
