// Application-level CPU scheduling (paper §7.3): an ExOS process owns the
// machine's time slices and doles them out to three compute-bound workers
// with a 3:2:1 proportional share, using nothing but Aegis's directed
// yield. Change the ticket numbers and rerun: no kernel involved.
#include <cstdio>
#include <memory>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/exos/stride.h"

using namespace xok;

int main(int argc, char** argv) {
  uint32_t tickets[3] = {3, 2, 1};
  if (argc == 4) {
    for (int i = 0; i < 3; ++i) {
      tickets[i] = static_cast<uint32_t>(std::max(1, atoi(argv[i + 1])));
    }
  }

  hw::Machine machine(hw::Machine::Config{.phys_pages = 256, .name = "stride"});
  aegis::Aegis kernel(machine);

  bool stop = false;
  uint64_t work_done[3] = {0, 0, 0};
  std::array<std::unique_ptr<exos::Process>, 3> workers;
  for (int i = 0; i < 3; ++i) {
    workers[i] = std::make_unique<exos::Process>(
        kernel,
        [&stop, &work_done, i](exos::Process& p) {
          while (!stop) {
            p.machine().Charge(hw::Instr(1000));  // "Work."
            ++work_done[i];
          }
        },
        exos::Process::Options{.slices = 0, .demand_zero = true});
    if (!workers[i]->ok()) {
      return 1;
    }
  }

  exos::Process scheduler(kernel, [&](exos::Process& p) {
    exos::StrideScheduler stride(p);
    for (int i = 0; i < 3; ++i) {
      stride.AddClient(workers[i]->id(), tickets[i]);
    }
    std::printf("scheduling 120 slices with tickets %u:%u:%u ...\n", tickets[0], tickets[1],
                tickets[2]);
    stride.RunSlices(120);
    stop = true;
    const auto& allocations = stride.allocations();
    const double total = static_cast<double>(tickets[0] + tickets[1] + tickets[2]);
    for (int i = 0; i < 3; ++i) {
      std::printf("worker %d: %3lu slices (ideal %5.1f), %llu work units\n", i,
                  static_cast<unsigned long>(allocations[i]), 120.0 * tickets[i] / total,
                  static_cast<unsigned long long>(work_done[i]));
    }
  });
  if (!scheduler.ok()) {
    return 1;
  }
  kernel.Run();
  std::printf("simulated time: %.2f ms\n", machine.clock().now_micros() / 1000.0);
  return 0;
}
