// Two *different* library operating systems, one exokernel (§2:
// "Application writers select libraries or implement their own. New
// implementations ... are incorporated by simply relinking").
//
// Environment 1 runs ExOS: lazy demand-paged heap, general-purpose fault
// handling — comfortable, with faults at first touch.
//
// Environment 2 runs RtOs, a 60-line library OS defined right here in the
// application: it eagerly allocates and maps its whole arena at startup
// and treats any later fault as a bug. That is a real-time guarantee —
// zero page faults after initialisation — that no fixed kernel abstraction
// can promise, and it needs nothing from Aegis beyond the standard
// secure-binding syscalls. Both environments run side by side, fully
// protected from each other.
#include <cstdio>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"

using namespace xok;

namespace {

// The entire custom library operating system.
class RtOs {
 public:
  RtOs(aegis::Aegis& kernel, hw::Vaddr arena_base, uint32_t arena_pages)
      : kernel_(kernel), base_(arena_base), pages_(arena_pages) {}

  // Eagerly allocate, map, and wire the whole arena. After this returns,
  // no memory access in the arena ever faults (mappings are re-installed
  // from our table on TLB capacity misses via the exception context).
  Status Init() {
    for (uint32_t i = 0; i < pages_; ++i) {
      Result<aegis::PageGrant> grant = kernel_.SysAllocPage();
      if (!grant.ok()) {
        return grant.status();
      }
      frames_.push_back(*grant);
      const Status bound =
          kernel_.SysTlbWrite(base_ + i * hw::kPageBytes, grant->page, true, grant->cap);
      if (bound != Status::kOk) {
        return bound;
      }
    }
    return Status::kOk;
  }

  // The exception context: TLB capacity misses inside the arena are
  // re-installed deterministically from our table (bounded, no
  // allocation); anything else is a hard fault.
  aegis::ExcAction OnException(const hw::TrapFrame& frame) {
    const hw::Vpn vpn = hw::VpnOf(frame.bad_vaddr);
    const hw::Vpn first = hw::VpnOf(base_);
    if ((frame.type == hw::ExceptionType::kTlbMissLoad ||
         frame.type == hw::ExceptionType::kTlbMissStore) &&
        vpn >= first && vpn < first + pages_) {
      ++refills_;
      const aegis::PageGrant& grant = frames_[vpn - first];
      return kernel_.SysTlbWrite(frame.bad_vaddr, grant.page, true, grant.cap) == Status::kOk
                 ? aegis::ExcAction::kRetry
                 : aegis::ExcAction::kSkip;
    }
    ++hard_faults_;
    return aegis::ExcAction::kSkip;
  }

  uint64_t refills() const { return refills_; }
  uint64_t hard_faults() const { return hard_faults_; }

 private:
  aegis::Aegis& kernel_;
  hw::Vaddr base_;
  uint32_t pages_;
  std::vector<aegis::PageGrant> frames_;
  uint64_t refills_ = 0;
  uint64_t hard_faults_ = 0;
};

}  // namespace

int main() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "multi"});
  aegis::Aegis kernel(machine);

  // Library OS #1: ExOS, demand paging.
  exos::Process exos_app(kernel, [&](exos::Process& p) {
    for (int i = 0; i < 16; ++i) {
      (void)machine.StoreWord(0x100000 + i * hw::kPageBytes, i);  // Faults lazily.
    }
    std::printf("[exos ] wrote 16 demand-paged pages (16 lazy faults, by design)\n");
    (void)p;
  });
  if (!exos_app.ok()) {
    return 1;
  }

  // Library OS #2: RtOs, defined above, on a raw Aegis environment.
  constexpr hw::Vaddr kArena = 0x2000000;
  constexpr uint32_t kArenaPages = 96;  // Exceeds the 64-entry hardware TLB.
  auto rtos = std::make_unique<RtOs>(kernel, kArena, kArenaPages);
  aegis::EnvSpec spec;
  spec.handlers.exception = [&rtos](const hw::TrapFrame& frame) {
    return rtos->OnException(frame);
  };
  spec.handlers.timer_epilogue = [&machine] { machine.Charge(hw::Instr(8)); };
  spec.entry = [&] {
    if (rtos->Init() != Status::kOk) {
      std::printf("[rtos ] init failed\n");
      return;
    }
    std::printf("[rtos ] arena of %u pages eagerly mapped; entering steady state\n",
                kArenaPages);
    // Steady state: pound the arena. The working set exceeds the hardware
    // TLB, so capacity refills happen — bounded table lookups, never
    // allocation — and hard faults stay at zero.
    uint64_t sum = 0;
    for (int pass = 0; pass < 4; ++pass) {
      for (uint32_t i = 0; i < kArenaPages; ++i) {
        (void)machine.StoreWord(kArena + i * hw::kPageBytes, i * pass);
        sum += machine.LoadWord(kArena + i * hw::kPageBytes).value_or(0);
      }
    }
    std::printf("[rtos ] steady state done (checksum %llu): %llu app-level refills "
                "(Aegis's software TLB absorbed the rest), %llu hard faults\n",
                static_cast<unsigned long long>(sum),
                static_cast<unsigned long long>(rtos->refills()),
                static_cast<unsigned long long>(rtos->hard_faults()));
  };
  if (!kernel.CreateEnv(std::move(spec)).ok()) {
    return 1;
  }

  kernel.Run();
  std::printf("two library operating systems shared one exokernel; neither could\n"
              "touch the other's pages (capabilities), and neither asked the kernel\n"
              "for a policy.\n");
  return 0;
}
