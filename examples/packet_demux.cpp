// Secure network multiplexing (paper §3.2): three services on one machine
// claim their own UDP traffic with downloaded DPF filters. Two use the
// ordinary kernel-queue path; the third is an echo service implemented as
// an ASH, answering from the interrupt handler while its owner sleeps. A
// client machine sprays packets at all three and reports what came back.
#include <cstdio>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/process.h"
#include "src/exos/udp.h"
#include "src/hw/world.h"

using namespace xok;

namespace {

uint64_t Resolve(uint32_t ip) { return ip == 1 ? 0xa : 0xb; }
constexpr uint16_t kLogPort = 500;
constexpr uint16_t kSumPort = 501;
constexpr uint16_t kEchoPort = 502;
constexpr int kPacketsPerService = 12;

}  // namespace

int main() {
  hw::World world;
  hw::Machine client_machine(hw::Machine::Config{.phys_pages = 256, .name = "client"},
                             &world);
  hw::Machine server_machine(hw::Machine::Config{.phys_pages = 256, .name = "server"},
                             &world);
  aegis::Aegis client_kernel(client_machine);
  aegis::Aegis server_kernel(server_machine);
  hw::Wire wire;
  hw::Nic client_nic(client_machine, 0xa);
  hw::Nic server_nic(server_machine, 0xb);
  wire.Attach(&client_nic);
  wire.Attach(&server_nic);
  client_kernel.AttachNic(&client_nic);
  server_kernel.AttachNic(&server_nic);

  int logged = 0;
  uint32_t summed = 0;
  int echoes_received = 0;
  bool client_done = false;

  // Service 1: a "logger" — counts datagrams on port 500.
  exos::Process logger(server_kernel, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
    (void)socket.Bind(kLogPort);
    for (int i = 0; i < kPacketsPerService; ++i) {
      if (socket.Recv().ok()) {
        ++logged;
      }
    }
    std::printf("[logger] saw %d datagrams on port %u\n", logged, kLogPort);
  });

  // Service 2: an accumulator — sums the first payload byte on port 501.
  exos::Process summer(server_kernel, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xb, 2, Resolve});
    (void)socket.Bind(kSumPort);
    for (int i = 0; i < kPacketsPerService; ++i) {
      Result<exos::Datagram> d = socket.Recv();
      if (d.ok() && !d->payload.empty()) {
        summed += d->payload[0];
      }
    }
    std::printf("[summer] total on port %u: %u\n", kSumPort, summed);
  });

  // Service 3: an ASH echo on port 502 — replies at interrupt level.
  exos::Process echoer(server_kernel, [&](exos::Process& p) {
    exos::AshEchoConfig config;
    config.iface = exos::NetIface{0xb, 2, Resolve};
    config.port = kEchoPort;
    config.peer_ip = 1;
    config.peer_port = kEchoPort;
    if (!exos::BindEchoAsh(p, config).ok()) {
      std::printf("[echoer] ASH bind failed\n");
      return;
    }
    while (!client_done) {
      p.kernel().SysSleep(hw::kClockHz / 20);
    }
    std::printf("[echoer] slept through the whole run; the ASH answered for me\n");
  });

  // The client sprays traffic at all three services.
  exos::Process client(client_kernel, [&](exos::Process& p) {
    exos::UdpSocket socket(p, exos::NetIface{0xa, 1, Resolve});
    (void)socket.Bind(kEchoPort);  // Echo replies land here.
    p.kernel().SysSleep(hw::kClockHz / 100);
    for (int i = 0; i < kPacketsPerService; ++i) {
      std::vector<uint8_t> payload = {static_cast<uint8_t>(i), 0, 0, 0};
      (void)socket.SendTo(2, kLogPort, payload);
      (void)socket.SendTo(2, kSumPort, payload);
      (void)socket.SendTo(2, kEchoPort, payload);
      if (socket.Recv().ok()) {
        ++echoes_received;  // The ASH's reply.
      }
    }
    client_done = true;
    std::printf("[client] sent %d packets to each service, got %d echoes\n",
                3 * kPacketsPerService, echoes_received);
  });

  if (!logger.ok() || !summer.ok() || !echoer.ok() || !client.ok()) {
    return 1;
  }
  world.Run({[&] { client_kernel.Run(); }, [&] { server_kernel.Run(); }});

  std::printf("demultiplexing: %d logged, sum %u, %d echoed — every packet reached\n"
              "exactly the service whose filter claimed it.\n",
              logged, summed, echoes_received);
  return 0;
}
