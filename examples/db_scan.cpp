// A toy "database" on the library file system — the storage story from
// the paper's introduction (§2: Stonebraker's complaint that databases
// must fight the kernel's file abstraction, and Cao et al.'s 45% win from
// application-controlled file caching).
//
// The database stores fixed-size records in a LibFS file and runs the
// same aggregate query repeatedly. Because the *file system and its
// cache are library code*, the database switches the replacement policy
// to match its looping scan — something impossible when the cache and its
// LRU live inside a monolithic kernel.
#include <cstdio>
#include <vector>

#include "src/core/aegis.h"
#include "src/exos/fs.h"
#include "src/exos/process.h"
#include "src/hw/disk.h"

using namespace xok;

namespace {

constexpr uint32_t kRecordBytes = 64;
constexpr uint32_t kRecords = 640;  // 10 blocks of records.
constexpr int kQueries = 8;

}  // namespace

int main() {
  hw::Machine machine(hw::Machine::Config{.phys_pages = 512, .name = "db"});
  aegis::Aegis kernel(machine);
  hw::Disk disk(machine, 256);
  kernel.AttachDisk(&disk);

  exos::Process db(kernel, [&](exos::Process& p) {
    Result<aegis::Aegis::DiskExtentGrant> extent = kernel.SysAllocDiskExtent(64);
    if (!extent.ok()) {
      std::printf("extent allocation failed\n");
      return;
    }
    auto fs = exos::LibFs::Format(p, *extent, /*cache_slots=*/8);
    if (!fs.ok()) {
      return;
    }
    Result<exos::FileHandle> table = (*fs)->Create("accounts");
    if (!table.ok()) {
      return;
    }

    // Load the table: record i has balance i.
    std::vector<uint8_t> record(kRecordBytes, 0);
    for (uint32_t i = 0; i < kRecords; ++i) {
      record[0] = static_cast<uint8_t>(i);
      record[1] = static_cast<uint8_t>(i >> 8);
      if ((*fs)->Write(*table, i * kRecordBytes, record) != Status::kOk) {
        return;
      }
    }
    (void)(*fs)->Sync();
    std::printf("loaded %u records (%u blocks) behind an 8-block cache\n", kRecords,
                kRecords * kRecordBytes / hw::kPageBytes);

    auto query = [&]() -> uint64_t {
      // SELECT SUM(balance): full scan.
      uint64_t sum = 0;
      std::vector<uint8_t> buffer(kRecordBytes);
      for (uint32_t i = 0; i < kRecords; ++i) {
        if (!(*fs)->Read(*table, i * kRecordBytes, buffer).ok()) {
          return 0;
        }
        sum += buffer[0] | (static_cast<uint32_t>(buffer[1]) << 8);
      }
      return sum;
    };

    for (int use_scan_aware : {0, 1}) {
      if (use_scan_aware != 0) {
        (*fs)->cache().set_victim_picker(exos::MakeScanAwarePicker(/*metadata_blocks=*/3));
      } else {
        (*fs)->cache().set_policy(exos::BlockCache::Policy::kLru);
      }
      const uint64_t misses0 = (*fs)->cache().misses();
      const uint64_t t0 = machine.clock().now();
      uint64_t sum = 0;
      for (int q = 0; q < kQueries; ++q) {
        sum = query();
      }
      const double ms = hw::CyclesToMicros(machine.clock().now() - t0) / 1000.0;
      std::printf("%s: %d queries in %.2f simulated ms (%llu block misses), sum=%llu\n",
                  use_scan_aware == 0 ? "kernel-style LRU" : "app scan-aware  ",
                  kQueries, ms, static_cast<unsigned long long>((*fs)->cache().misses() - misses0),
                  static_cast<unsigned long long>(sum));
    }
    std::printf("the database picked its own cache policy — the kernel was never asked\n");
  });
  if (!db.ok()) {
    return 1;
  }
  kernel.Run();
  return 0;
}
